"""The cascading IBLTs-of-IBLTs protocol (Algorithm 2, Theorem 3.7, Cor 3.8).

The flat IBLT-of-IBLTs protocol pays ``O(d)`` cells for *every* differing
child even though the total number of element changes across all children is
only ``d``.  Algorithm 2 fixes this with a cascade of levels
``i = 1 .. t = log2(min(d, h))``: level ``i`` uses child IBLTs of ``O(2^i)``
cells inside a parent IBLT of ``O(d / 2^i)`` cells.  Children with small
differences are recovered at the cheap early levels and *removed* from later
levels, so only the few children with large differences reach the expensive
levels.  When ``d >= h`` a final table ``T*`` of ``O(d/h)`` cells carries
explicit encodings of the children too different to pair up at all.

Communication: ``O(d log(min(d,h)) log u + d log s)`` bits, one round.

The protocol logic lives in :mod:`repro.protocols.parties.setsofsets`; the
functions here are the backward-compatible entry points (in-memory session).
"""

from __future__ import annotations

from repro.comm import ReconciliationResult, Transcript
from repro.core.setsofsets.types import SetOfSets


def reconcile_cascading(
    alice: SetOfSets,
    bob: SetOfSets,
    difference_bound: int,
    universe_size: int,
    max_child_size: int,
    seed: int,
    *,
    differing_children_bound: int | None = None,
    child_hash_bits: int = 48,
    num_hashes: int = 4,
    backend: str | None = None,
    field_kernel: str | None = None,
    level_slack: float = 3.0,
    transcript: Transcript | None = None,
) -> ReconciliationResult:
    """One-round cascading protocol for known ``d`` (Algorithm 2 / Theorem 3.7).

    Parameters
    ----------
    alice, bob:
        The two parent sets.
    difference_bound:
        Upper bound ``d`` on the total number of element changes.
    universe_size, max_child_size:
        Shared ``u`` and ``h``.
    seed:
        Shared seed.
    differing_children_bound:
        Bound ``d_hat`` on differing child sets; defaults to
        ``min(difference_bound, s)`` with ``s`` the larger parent size.
    backend:
        Cell-store backend for every table built here (the wide-keyed parent
        tables fall back to the pure-Python store; see :mod:`repro.config`).
    field_kernel:
        Scoped GF(p) kernel selection (see :mod:`repro.field.kernels`),
        matching the other set-of-sets entry points.  The cascade itself is
        pure-IBLT, so this only affects field arithmetic performed by custom
        encoding schemes or estimators running under this call.
    level_slack:
        Multiplier applied to the per-level capacity budget (the proof's 9/4
        constant rounded up).
    """
    from repro.protocols.parties.setsofsets import cascading_parties, context_for
    from repro.protocols.session import run_session

    ctx = context_for(
        alice,
        bob,
        universe_size,
        seed,
        max_child_size=max_child_size,
        differing_children_bound=differing_children_bound,
        child_hash_bits=child_hash_bits,
        num_hashes=num_hashes,
        backend=backend,
        level_slack=level_slack,
    )
    alice_party, bob_party = cascading_parties(alice, bob, difference_bound, ctx)
    return run_session(
        alice_party, bob_party, transcript=transcript, field_kernel=field_kernel
    )


def reconcile_cascading_unknown(
    alice: SetOfSets,
    bob: SetOfSets,
    universe_size: int,
    max_child_size: int,
    seed: int,
    *,
    initial_bound: int = 1,
    max_bound: int | None = None,
    child_hash_bits: int = 48,
    num_hashes: int = 4,
    backend: str | None = None,
    field_kernel: str | None = None,
    level_slack: float = 3.0,
) -> ReconciliationResult:
    """Repeated-doubling variant for unknown ``d`` (Corollary 3.8).

    As in :func:`~repro.core.setsofsets.iblt_of_iblts.reconcile_iblt_of_iblts_unknown`,
    the final doubling is clamped to ``max_bound`` so the largest permitted
    bound is always attempted.
    """
    from repro.protocols.parties.setsofsets import cascading_parties, context_for
    from repro.protocols.session import run_session

    ctx = context_for(
        alice,
        bob,
        universe_size,
        seed,
        max_child_size=max_child_size,
        child_hash_bits=child_hash_bits,
        num_hashes=num_hashes,
        backend=backend,
        level_slack=level_slack,
    )
    alice_party, bob_party = cascading_parties(
        alice, bob, None, ctx, initial_bound=initial_bound, max_bound=max_bound
    )
    return run_session(alice_party, bob_party, field_kernel=field_kernel)
