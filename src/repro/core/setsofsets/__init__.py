"""Reconciliation of sets of sets (Section 3 -- the paper's core contribution).

Alice and Bob each hold a *parent set* of up to ``s`` *child sets*, each child
containing at most ``h`` elements of a universe of size ``u``; the total
number of element differences under the minimum-difference matching of child
sets is ``d``.  Protocols (all one-way: Bob ends with Alice's parent set):

=================================================  =====================  ======
protocol                                           paper reference        rounds
=================================================  =====================  ======
:func:`~repro.core.setsofsets.naive.reconcile_naive`                Thm 3.3     1
:func:`~repro.core.setsofsets.naive.reconcile_naive_unknown`        Thm 3.4     2
:func:`~repro.core.setsofsets.iblt_of_iblts.reconcile_iblt_of_iblts`        Alg 1 / Thm 3.5   1
:func:`~repro.core.setsofsets.iblt_of_iblts.reconcile_iblt_of_iblts_unknown` Cor 3.6   O(log d)
:func:`~repro.core.setsofsets.cascading.reconcile_cascading`        Alg 2 / Thm 3.7   1
:func:`~repro.core.setsofsets.cascading.reconcile_cascading_unknown`        Cor 3.8   O(log d)
:func:`~repro.core.setsofsets.multiround.reconcile_multiround`      Thm 3.9     3
:func:`~repro.core.setsofsets.multiround.reconcile_multiround_unknown`      Thm 3.10    4
=================================================  =====================  ======

:mod:`repro.core.setsofsets.nested` adapts the protocols to sets of multisets
and multisets of multisets (Section 3.4), which the graph applications use.
"""

from repro.core.setsofsets.types import SetOfSets
from repro.core.setsofsets.matching import (
    minimum_matching_difference,
    relaxed_difference,
    differing_children_count,
)
from repro.core.setsofsets.naive import reconcile_naive, reconcile_naive_unknown
from repro.core.setsofsets.iblt_of_iblts import (
    reconcile_iblt_of_iblts,
    reconcile_iblt_of_iblts_unknown,
)
from repro.core.setsofsets.cascading import (
    reconcile_cascading,
    reconcile_cascading_unknown,
)
from repro.core.setsofsets.multiround import (
    reconcile_multiround,
    reconcile_multiround_unknown,
)
from repro.core.setsofsets.nested import (
    MultisetOfMultisets,
    encode_multiset_children,
    decode_multiset_children,
    reconcile_multisets_of_multisets,
)

__all__ = [
    "SetOfSets",
    "minimum_matching_difference",
    "relaxed_difference",
    "differing_children_count",
    "reconcile_naive",
    "reconcile_naive_unknown",
    "reconcile_iblt_of_iblts",
    "reconcile_iblt_of_iblts_unknown",
    "reconcile_cascading",
    "reconcile_cascading_unknown",
    "reconcile_multiround",
    "reconcile_multiround_unknown",
    "MultisetOfMultisets",
    "encode_multiset_children",
    "decode_multiset_children",
    "reconcile_multisets_of_multisets",
]
