"""The naive set-of-sets protocols (Theorems 3.3 and 3.4).

Ignore the fact that children are sets: treat each child set as a single
item from the universe of all possible child sets (of size ``O(min(u^h,
2^u))``) and run plain set reconciliation over those items.  Communication is
``O(d_hat * min(h log u, u))`` -- excellent when child sets are tiny, but it
resends whole child sets even when only one element changed, which is what
the structured protocols of Sections 3.2-3.3 fix.

The protocol logic lives in :mod:`repro.protocols.parties.setsofsets`; the
functions here are the backward-compatible entry points (in-memory session).
"""

from __future__ import annotations

from typing import Callable

from repro.comm import ReconciliationResult, Transcript
from repro.core.setsofsets.types import SetOfSets
from repro.estimator import SetDifferenceEstimator


def reconcile_naive(
    alice: SetOfSets,
    bob: SetOfSets,
    differing_children_bound: int,
    universe_size: int,
    max_child_size: int,
    seed: int,
    *,
    num_hashes: int = 4,
    backend: str | None = None,
    transcript: Transcript | None = None,
) -> ReconciliationResult:
    """One-round naive protocol for known ``d_hat`` (Theorem 3.3).

    Parameters
    ----------
    alice, bob:
        The two parent sets.
    differing_children_bound:
        Upper bound ``d_hat`` on the number of child sets appearing on one
        side only (at most ``min(d, s)``).
    universe_size, max_child_size:
        The shared parameters ``u`` and ``h`` fixing the explicit encoding.
    seed:
        Shared seed.
    """
    from repro.protocols.parties.setsofsets import context_for, naive_parties
    from repro.protocols.session import run_session

    ctx = context_for(
        alice,
        bob,
        universe_size,
        seed,
        max_child_size=max_child_size,
        num_hashes=num_hashes,
        backend=backend,
    )
    alice_party, bob_party = naive_parties(alice, bob, differing_children_bound, ctx)
    return run_session(alice_party, bob_party, transcript=transcript)


def reconcile_naive_unknown(
    alice: SetOfSets,
    bob: SetOfSets,
    universe_size: int,
    max_child_size: int,
    seed: int,
    *,
    estimator_factory: Callable[[int], SetDifferenceEstimator] | None = None,
    safety_factor: float = 2.0,
    num_hashes: int = 4,
    backend: str | None = None,
) -> ReconciliationResult:
    """Two-round naive protocol for unknown ``d_hat`` (Theorem 3.4).

    Bob sends a set-difference estimator over the hashes of his child sets;
    Alice estimates the number of differing children and runs the known
    bound protocol with a safety margin.
    """
    from repro.protocols.parties.setsofsets import context_for, naive_parties
    from repro.protocols.session import run_session

    ctx = context_for(
        alice,
        bob,
        universe_size,
        seed,
        max_child_size=max_child_size,
        num_hashes=num_hashes,
        backend=backend,
        estimator_factory=estimator_factory,
        safety_factor=safety_factor,
    )
    alice_party, bob_party = naive_parties(alice, bob, None, ctx)
    return run_session(alice_party, bob_party)
