"""The naive set-of-sets protocols (Theorems 3.3 and 3.4).

Ignore the fact that children are sets: treat each child set as a single
item from the universe of all possible child sets (of size ``O(min(u^h,
2^u))``) and run plain set reconciliation over those items.  Communication is
``O(d_hat * min(h log u, u))`` -- excellent when child sets are tiny, but it
resends whole child sets even when only one element changed, which is what
the structured protocols of Sections 3.2-3.3 fix.
"""

from __future__ import annotations

from typing import Callable

from repro.comm import ReconciliationResult, Transcript, WORD_BITS
from repro.core.setsofsets.encoding import ExplicitChildScheme, parent_hash
from repro.core.setsofsets.types import SetOfSets
from repro.errors import ParameterError
from repro.estimator import L0Estimator, SetDifferenceEstimator
from repro.hashing import SeededHasher, derive_seed
from repro.iblt import IBLT, IBLTParameters


def reconcile_naive(
    alice: SetOfSets,
    bob: SetOfSets,
    differing_children_bound: int,
    universe_size: int,
    max_child_size: int,
    seed: int,
    *,
    num_hashes: int = 4,
    backend: str | None = None,
    transcript: Transcript | None = None,
) -> ReconciliationResult:
    """One-round naive protocol for known ``d_hat`` (Theorem 3.3).

    Parameters
    ----------
    alice, bob:
        The two parent sets.
    differing_children_bound:
        Upper bound ``d_hat`` on the number of child sets appearing on one
        side only (at most ``min(d, s)``).
    universe_size, max_child_size:
        The shared parameters ``u`` and ``h`` fixing the explicit encoding.
    seed:
        Shared seed.
    """
    if differing_children_bound < 0:
        raise ParameterError("differing_children_bound must be non-negative")
    transcript = transcript if transcript is not None else Transcript()
    scheme = ExplicitChildScheme(universe_size, max_child_size)
    # A bound of d_hat differing child *pairs* can put up to 2 * d_hat child
    # encodings (one per side) into the difference table, so size for that.
    params = IBLTParameters.for_difference(
        2 * max(1, differing_children_bound),
        scheme.key_bits,
        derive_seed(seed, "naive-parent"),
        num_hashes,
    )

    alice_table = IBLT(params, backend=backend)
    alice_table.insert_batch(scheme.encode(child) for child in alice)
    verification = parent_hash(alice, seed)
    transcript.send(
        "alice",
        "naive parent IBLT",
        alice_table.size_bits + WORD_BITS,
        payload=(alice_table, verification),
    )

    difference = alice_table.copy()
    difference.delete_batch(scheme.encode(child) for child in bob)
    decode = difference.try_decode()
    if not decode.success:
        return ReconciliationResult(
            False, None, transcript, details={"failure": "parent-iblt-peel"}
        )
    alice_only = [scheme.decode(key) for key in decode.positive]
    bob_only = [scheme.decode(key) for key in decode.negative]
    recovered = bob.replace_children(bob_only, alice_only)
    verified = parent_hash(recovered, seed) == verification
    return ReconciliationResult(
        verified,
        recovered if verified else None,
        transcript,
        details={
            "differing_children_found": len(alice_only) + len(bob_only),
            "failure": None if verified else "verification-hash",
        },
    )


def reconcile_naive_unknown(
    alice: SetOfSets,
    bob: SetOfSets,
    universe_size: int,
    max_child_size: int,
    seed: int,
    *,
    estimator_factory: Callable[[int], SetDifferenceEstimator] | None = None,
    safety_factor: float = 2.0,
    num_hashes: int = 4,
    backend: str | None = None,
) -> ReconciliationResult:
    """Two-round naive protocol for unknown ``d_hat`` (Theorem 3.4).

    Bob sends a set-difference estimator over the hashes of his child sets;
    Alice estimates the number of differing children and runs the known
    bound protocol with a safety margin.
    """
    if estimator_factory is None:
        estimator_factory = L0Estimator
    transcript = Transcript()
    estimator_seed = derive_seed(seed, "naive-estimator")
    hasher = SeededHasher(derive_seed(seed, "naive-child-id"), 64)

    def child_id(child) -> int:
        return hasher.hash_iterable(sorted(child)) ^ hasher.hash_int(len(child))

    bob_estimator = estimator_factory(estimator_seed)
    bob_estimator.update_all((child_id(child) for child in bob), 1)
    transcript.send(
        "bob", "child-count estimator", bob_estimator.size_bits, payload=bob_estimator
    )

    alice_estimator = estimator_factory(estimator_seed)
    alice_estimator.update_all((child_id(child) for child in alice), 2)
    estimate = bob_estimator.merge(alice_estimator).query()
    bound = max(1, int(round(safety_factor * estimate)) + 1)

    result = reconcile_naive(
        alice,
        bob,
        bound,
        universe_size,
        max_child_size,
        seed,
        num_hashes=num_hashes,
        backend=backend,
        transcript=transcript,
    )
    result.details["estimated_differing_children"] = estimate
    result.details["differing_children_bound_used"] = bound
    return result
