"""Sets of multisets and multisets of multisets (Section 3.4).

The graph applications need nested multisets: the degree-neighborhood scheme
of Section 5.2 reconciles a *set of multisets* (each vertex signature is a
multiset of neighbor degrees) and forest reconciliation (Section 6)
reconciles a *multiset of multisets* (several vertices can root isomorphic
subtrees).  Following the paper, multiplicities are folded into ordinary set
elements -- an element ``x`` occurring ``k`` times becomes the pair
``(x, k)`` -- after which any set-of-sets protocol applies unchanged.  The
universe grows accordingly, and a single multiplicity change counts as two
encoded-element changes, which only affects constants.

Because the encoded parent is an ordinary :class:`SetOfSets`, nested
reconciliation routes through the batched child-sketch pipeline for free:
the default cascading protocol builds every encoded child's sketch through
:class:`~repro.iblt.multi.IBLTArray` in one flat pass per level.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Iterable, Iterator

from repro.comm import ReconciliationResult
from repro.core.setrecon.multiset import decode_multiset, encode_multiset
from repro.core.setsofsets.cascading import reconcile_cascading
from repro.core.setsofsets.types import SetOfSets
from repro.errors import ParameterError


class MultisetOfMultisets:
    """An immutable multiset of child multisets.

    Children are canonicalised as sorted tuples of their elements (with
    repetition); the parent stores each distinct child with a positive
    multiplicity.
    """

    __slots__ = ("_children",)

    def __init__(self, children: Iterable[Iterable[int]]) -> None:
        counter: Counter[tuple[int, ...]] = Counter()
        for child in children:
            canonical = tuple(sorted(child))
            if any(not isinstance(element, int) or element < 0 for element in canonical):
                raise ParameterError("child multiset elements must be non-negative integers")
            counter[canonical] += 1
        self._children = dict(counter)

    @classmethod
    def from_counts(cls, counts: dict[tuple[int, ...], int]) -> "MultisetOfMultisets":
        """Build directly from a ``{canonical child: multiplicity}`` mapping."""
        instance = cls(())
        validated = {}
        for child, multiplicity in counts.items():
            if multiplicity <= 0:
                raise ParameterError("child multiplicities must be positive")
            validated[tuple(sorted(child))] = multiplicity
        instance._children = validated
        return instance

    # -- parameters -------------------------------------------------------------------

    @property
    def children(self) -> dict[tuple[int, ...], int]:
        """Mapping from canonical child tuple to multiplicity."""
        return dict(self._children)

    @property
    def num_children(self) -> int:
        """Total number of children, counting multiplicity."""
        return sum(self._children.values())

    @property
    def num_distinct_children(self) -> int:
        """Number of distinct child multisets."""
        return len(self._children)

    @property
    def max_child_size(self) -> int:
        """Largest child size (with repetition)."""
        return max((len(child) for child in self._children), default=0)

    @property
    def total_elements(self) -> int:
        """Total elements across all children, counting every multiplicity."""
        return sum(len(child) * mult for child, mult in self._children.items())

    @property
    def max_element_multiplicity(self) -> int:
        """Largest multiplicity of any element inside any child."""
        best = 1
        for child in self._children:
            if child:
                best = max(best, max(Counter(child).values()))
        return best

    @property
    def max_parent_multiplicity(self) -> int:
        """Largest multiplicity of any child in the parent."""
        return max(self._children.values(), default=1)

    # -- iteration and equality ---------------------------------------------------------

    def __iter__(self) -> Iterator[tuple[tuple[int, ...], int]]:
        return iter(sorted(self._children.items()))

    def __len__(self) -> int:
        return len(self._children)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MultisetOfMultisets):
            return NotImplemented
        return self._children == other._children

    def __hash__(self) -> int:
        return hash(frozenset(self._children.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MultisetOfMultisets(children={self.num_children}, "
            f"distinct={self.num_distinct_children})"
        )


# ---------------------------------------------------------------------------
# Encoding into plain sets of sets
# ---------------------------------------------------------------------------


def _pair_universe(universe_size: int, element_multiplicity_bound: int) -> int:
    return universe_size * (element_multiplicity_bound + 1) + element_multiplicity_bound + 1


def encode_multiset_children(
    parent: MultisetOfMultisets,
    universe_size: int,
    element_multiplicity_bound: int,
    parent_multiplicity_bound: int,
) -> SetOfSets:
    """Encode a multiset of multisets as a plain :class:`SetOfSets`.

    Every child multiset becomes the set of its ``(element, count)`` pair
    encodings plus one reserved *tag* element recording the child's
    multiplicity in the parent.
    """
    if element_multiplicity_bound < parent.max_element_multiplicity:
        raise ParameterError("element_multiplicity_bound too small for this parent")
    if parent_multiplicity_bound < parent.max_parent_multiplicity:
        raise ParameterError("parent_multiplicity_bound too small for this parent")
    tag_base = _pair_universe(universe_size, element_multiplicity_bound)
    encoded_children = []
    for child, multiplicity in parent:
        counts = dict(Counter(child))
        encoded = (
            encode_multiset(counts, element_multiplicity_bound) if counts else set()
        )
        encoded.add(tag_base + multiplicity)
        encoded_children.append(encoded)
    return SetOfSets(encoded_children)


def decode_multiset_children(
    encoded: SetOfSets,
    universe_size: int,
    element_multiplicity_bound: int,
) -> MultisetOfMultisets:
    """Inverse of :func:`encode_multiset_children`."""
    tag_base = _pair_universe(universe_size, element_multiplicity_bound)
    counts: dict[tuple[int, ...], int] = {}
    for child in encoded:
        tags = [value for value in child if value >= tag_base]
        if len(tags) != 1:
            raise ParameterError("encoded child is missing its multiplicity tag")
        multiplicity = tags[0] - tag_base
        pairs = {value for value in child if value < tag_base}
        element_counts = decode_multiset(pairs, element_multiplicity_bound)
        flattened: list[int] = []
        for element, count in sorted(element_counts.items()):
            flattened.extend([element] * count)
        key = tuple(flattened)
        counts[key] = counts.get(key, 0) + multiplicity
    return MultisetOfMultisets.from_counts(counts) if counts else MultisetOfMultisets(())


def encoded_universe_size(
    universe_size: int,
    element_multiplicity_bound: int,
    parent_multiplicity_bound: int,
) -> int:
    """Universe size of the encoded representation (pairs plus tags)."""
    return _pair_universe(universe_size, element_multiplicity_bound) + parent_multiplicity_bound + 1


# ---------------------------------------------------------------------------
# End-to-end reconciliation of multisets of multisets
# ---------------------------------------------------------------------------


def reconcile_multisets_of_multisets(
    alice: MultisetOfMultisets,
    bob: MultisetOfMultisets,
    difference_bound: int,
    universe_size: int,
    seed: int,
    *,
    element_multiplicity_bound: int | None = None,
    parent_multiplicity_bound: int | None = None,
    protocol: Callable[..., ReconciliationResult] | None = None,
    backend: str | None = None,
    **protocol_kwargs,
) -> ReconciliationResult:
    """Reconcile two multisets of multisets (one-way, Bob recovers Alice's).

    Parameters
    ----------
    alice, bob:
        The two parents.
    difference_bound:
        Bound on the number of element insertions/deletions separating the
        parents (the paper's ``d``); internally doubled because one multiset
        change touches two encoded pairs.
    universe_size:
        Universe of the underlying elements.
    element_multiplicity_bound, parent_multiplicity_bound:
        Bounds on multiplicities; default to what the two inputs exhibit.
    protocol:
        The underlying set-of-sets protocol; defaults to the cascading
        protocol of Theorem 3.7.  It must accept
        ``(alice, bob, difference_bound, universe_size, max_child_size, seed)``.
    backend:
        Cell-store backend forwarded to the underlying protocol (only when
        set, so custom protocols without a ``backend`` parameter keep
        working); see :mod:`repro.config`.
    """
    if backend is not None:
        protocol_kwargs = dict(protocol_kwargs, backend=backend)
    if element_multiplicity_bound is None:
        element_multiplicity_bound = max(
            alice.max_element_multiplicity, bob.max_element_multiplicity
        )
    if parent_multiplicity_bound is None:
        parent_multiplicity_bound = max(
            alice.max_parent_multiplicity, bob.max_parent_multiplicity
        )
    if protocol is None:
        protocol = reconcile_cascading

    encoded_alice = encode_multiset_children(
        alice, universe_size, element_multiplicity_bound, parent_multiplicity_bound
    )
    encoded_bob = encode_multiset_children(
        bob, universe_size, element_multiplicity_bound, parent_multiplicity_bound
    )
    encoded_universe = encoded_universe_size(
        universe_size, element_multiplicity_bound, parent_multiplicity_bound
    )
    encoded_bound = 2 * max(1, difference_bound) + 2
    max_child = max(1, max(encoded_alice.max_child_size, encoded_bob.max_child_size))

    result = protocol(
        encoded_alice,
        encoded_bob,
        encoded_bound,
        encoded_universe,
        max_child,
        seed,
        **protocol_kwargs,
    )
    if result.success:
        result.recovered = decode_multiset_children(
            result.recovered, universe_size, element_multiplicity_bound
        )
    return result
