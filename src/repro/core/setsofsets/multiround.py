"""The multi-round set-of-sets protocol (Section 3.3, Theorems 3.9 and 3.10).

Instead of shipping child IBLTs sized for the worst case, the parties spend
extra rounds to learn *which* children differ and *by how much*:

1. Alice sends an IBLT of her child-set hashes (``O(d_hat)`` cells of
   ``O(log s)`` bits each).
2. Bob returns his own hash IBLT together with a small set-difference
   estimator for each of his differing children.
3. Alice pairs each of her differing children with Bob's closest child (by
   estimated difference) and sends, per child, either an IBLT sized for that
   estimated difference (large differences) or characteristic-polynomial
   evaluations (small differences, where the CPI protocol's certainty and
   tiny size win).
4. Bob decodes each payload against the matched child and rebuilds Alice's
   parent set.

The unknown-``d`` variant (Theorem 3.10) prepends one more message: Bob
sends a difference estimator over the child hashes so Alice can size the
hash IBLT, giving 4 rounds in total.

The protocol logic lives in :mod:`repro.protocols.parties.setsofsets`; the
functions here are the backward-compatible entry points (in-memory session).
"""

from __future__ import annotations

from typing import Callable

from repro.comm import ReconciliationResult, Transcript
from repro.core.setsofsets.types import SetOfSets
from repro.errors import ParameterError
from repro.estimator import SetDifferenceEstimator


def reconcile_multiround(
    alice: SetOfSets,
    bob: SetOfSets,
    difference_bound: int,
    universe_size: int,
    max_child_size: int,
    seed: int,
    *,
    differing_children_bound: int | None = None,
    child_hash_bits: int = 48,
    num_hashes: int = 4,
    backend: str | None = None,
    field_kernel: str | None = None,
    estimator_factory: Callable[[int], SetDifferenceEstimator] | None = None,
    estimate_safety: float = 2.0,
    transcript: Transcript | None = None,
) -> ReconciliationResult:
    """Three-round protocol for known ``d`` (Theorem 3.9).

    Parameters
    ----------
    alice, bob:
        The two parent sets.
    difference_bound:
        Bound ``d`` on the total element differences (used for the
        IBLT-vs-CPI threshold ``sqrt(d)``).
    universe_size, max_child_size:
        Shared ``u`` and ``h``.
    differing_children_bound:
        Bound ``d_hat`` on differing children; defaults to
        ``min(d, max(s_A, s_B))``.
    backend:
        Cell-store backend for the hash tables and per-child IBLTs (see
        :mod:`repro.config`); the 48-bit child hashes vectorize directly.
    field_kernel:
        GF(p) kernel for the per-child characteristic-polynomial payloads
        (see :mod:`repro.field.kernels`); ``None`` uses the process default.
    estimator_factory:
        Factory for the per-child set-difference estimators; defaults to
        small L0 sketches sized for ``h``.
    estimate_safety:
        Multiplier applied to estimated per-child differences before sizing
        payloads (covers the estimators' constant-factor error).
    """
    if difference_bound < 0:
        raise ParameterError("difference_bound must be non-negative")
    from repro.protocols.parties.setsofsets import context_for, multiround_parties
    from repro.protocols.session import run_session

    ctx = context_for(
        alice,
        bob,
        universe_size,
        seed,
        max_child_size=max_child_size,
        differing_children_bound=differing_children_bound,
        child_hash_bits=child_hash_bits,
        num_hashes=num_hashes,
        backend=backend,
        field_kernel=field_kernel,
        estimator_factory=estimator_factory,
        estimate_safety=estimate_safety,
    )
    alice_party, bob_party = multiround_parties(
        alice, bob, max(1, difference_bound), ctx
    )
    return run_session(alice_party, bob_party, transcript=transcript)


def reconcile_multiround_unknown(
    alice: SetOfSets,
    bob: SetOfSets,
    universe_size: int,
    max_child_size: int,
    seed: int,
    *,
    child_hash_bits: int = 48,
    num_hashes: int = 4,
    backend: str | None = None,
    field_kernel: str | None = None,
    estimator_factory: Callable[[int], SetDifferenceEstimator] | None = None,
    estimate_safety: float = 2.0,
    hash_estimator_factory: Callable[[int], SetDifferenceEstimator] | None = None,
) -> ReconciliationResult:
    """Four-round protocol for unknown ``d`` (Theorem 3.10).

    Bob first sends a set-difference estimator over his child-set hashes;
    Alice uses the estimated number of differing children both as ``d_hat``
    and as a stand-in for ``d`` (scaled by ``max_child_size``) when choosing
    the IBLT-vs-CPI threshold.
    """
    from repro.protocols.parties.setsofsets import context_for, multiround_parties
    from repro.protocols.session import run_session

    if hash_estimator_factory is not None:
        # Custom hash estimators restrict the session to the in-memory
        # transport (the wire codec serializes the default L0 shape).
        from repro.protocols.parties import setsofsets as _parties

        ctx = context_for(
            alice,
            bob,
            universe_size,
            seed,
            max_child_size=max_child_size,
            child_hash_bits=child_hash_bits,
            num_hashes=num_hashes,
            backend=backend,
            field_kernel=field_kernel,
            estimator_factory=estimator_factory,
            estimate_safety=estimate_safety,
        )
        alice_party = _parties.multiround_alice_unknown(
            alice, ctx, hash_estimator_factory=hash_estimator_factory
        )
        bob_party = _parties.multiround_bob_unknown(
            bob, ctx, hash_estimator_factory=hash_estimator_factory
        )
        return run_session(alice_party, bob_party)

    ctx = context_for(
        alice,
        bob,
        universe_size,
        seed,
        max_child_size=max_child_size,
        child_hash_bits=child_hash_bits,
        num_hashes=num_hashes,
        backend=backend,
        field_kernel=field_kernel,
        estimator_factory=estimator_factory,
        estimate_safety=estimate_safety,
    )
    alice_party, bob_party = multiround_parties(alice, bob, None, ctx)
    return run_session(alice_party, bob_party)
