"""The multi-round set-of-sets protocol (Section 3.3, Theorems 3.9 and 3.10).

Instead of shipping child IBLTs sized for the worst case, the parties spend
extra rounds to learn *which* children differ and *by how much*:

1. Alice sends an IBLT of her child-set hashes (``O(d_hat)`` cells of
   ``O(log s)`` bits each).
2. Bob returns his own hash IBLT together with a small set-difference
   estimator for each of his differing children.
3. Alice pairs each of her differing children with Bob's closest child (by
   estimated difference) and sends, per child, either an IBLT sized for that
   estimated difference (large differences) or characteristic-polynomial
   evaluations (small differences, where the CPI protocol's certainty and
   tiny size win).
4. Bob decodes each payload against the matched child and rebuilds Alice's
   parent set.

The unknown-``d`` variant (Theorem 3.10) prepends one more message: Bob
sends a difference estimator over the child hashes so Alice can size the
hash IBLT, giving 4 rounds in total.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.comm import ReconciliationResult, Transcript, WORD_BITS
from repro.core.setrecon.cpi import CPIMessage, cpi_decode, cpi_encode
from repro.core.setrecon.difference import apply_difference, max_element_bits
from repro.core.setsofsets.encoding import (
    child_set_hash,
    child_set_hash_many,
    parent_hash,
)
from repro.core.setsofsets.types import SetOfSets
from repro.errors import ParameterError
from repro.estimator import L0Estimator, SetDifferenceEstimator
from repro.hashing import derive_seed
from repro.iblt import IBLT, IBLTParameters


@dataclass(frozen=True)
class _ChildPayload:
    """One per-child payload of Alice's final message."""

    target_hash: int          # hash of Bob's child to decode against
    own_hash: int             # hash of Alice's child (verification)
    iblt: IBLT | None         # used when the estimated difference is large
    cpi: CPIMessage | None    # used when the estimated difference is small

    def size_bits(self, hash_bits: int) -> int:
        payload = self.iblt.size_bits if self.iblt is not None else self.cpi.size_bits
        return 2 * hash_bits + payload


def _default_estimator_factory(max_child_size: int) -> Callable[[int], SetDifferenceEstimator]:
    """Small per-child estimators: O(log h) levels of a handful of buckets."""
    levels = max(4, max_child_size.bit_length() + 2)

    def factory(seed: int) -> SetDifferenceEstimator:
        return L0Estimator(seed, num_levels=levels, buckets_per_level=32)

    return factory


def _hash_iblt_params(d_hat: int, hash_bits: int, seed: int, num_hashes: int) -> IBLTParameters:
    # Up to 2 * d_hat child hashes (one per side of each differing pair) can
    # remain after Bob subtracts his own hashes, so size for that.
    return IBLTParameters.for_difference(
        2 * max(1, d_hat),
        hash_bits,
        derive_seed(seed, "multiround-hash-iblt"),
        num_hashes,
        checksum_bits=24,
        count_bits=16,
    )


def reconcile_multiround(
    alice: SetOfSets,
    bob: SetOfSets,
    difference_bound: int,
    universe_size: int,
    max_child_size: int,
    seed: int,
    *,
    differing_children_bound: int | None = None,
    child_hash_bits: int = 48,
    num_hashes: int = 4,
    backend: str | None = None,
    field_kernel: str | None = None,
    estimator_factory: Callable[[int], SetDifferenceEstimator] | None = None,
    estimate_safety: float = 2.0,
    transcript: Transcript | None = None,
) -> ReconciliationResult:
    """Three-round protocol for known ``d`` (Theorem 3.9).

    Parameters
    ----------
    alice, bob:
        The two parent sets.
    difference_bound:
        Bound ``d`` on the total element differences (used for the
        IBLT-vs-CPI threshold ``sqrt(d)``).
    universe_size, max_child_size:
        Shared ``u`` and ``h``.
    differing_children_bound:
        Bound ``d_hat`` on differing children; defaults to
        ``min(d, max(s_A, s_B))``.
    backend:
        Cell-store backend for the hash tables and per-child IBLTs (see
        :mod:`repro.config`); the 48-bit child hashes vectorize directly.
    field_kernel:
        GF(p) kernel for the per-child characteristic-polynomial payloads
        (see :mod:`repro.field.kernels`); ``None`` uses the process default.
    estimator_factory:
        Factory for the per-child set-difference estimators; defaults to
        small L0 sketches sized for ``h``.
    estimate_safety:
        Multiplier applied to estimated per-child differences before sizing
        payloads (covers the estimators' constant-factor error).
    """
    if difference_bound < 0:
        raise ParameterError("difference_bound must be non-negative")
    transcript = transcript if transcript is not None else Transcript()
    difference_bound = max(1, difference_bound)
    d_hat = (
        differing_children_bound
        if differing_children_bound is not None
        else min(difference_bound, max(1, max(alice.num_children, bob.num_children)))
    )
    if estimator_factory is None:
        estimator_factory = _default_estimator_factory(max(1, max_child_size))
    hash_seed = derive_seed(seed, "child-hash")
    estimator_seed = derive_seed(seed, "multiround-child-estimator")
    element_bits = max_element_bits(universe_size)

    def hash_of(child) -> int:
        return child_set_hash(child, hash_seed, child_hash_bits)

    # ---- Round 1: Alice sends the IBLT of her child hashes (one batch; the
    # hashes of each whole parent set are computed in one batched pass).
    hash_params = _hash_iblt_params(d_hat, child_hash_bits, seed, num_hashes)
    alice_hash_table = IBLT(hash_params, backend=backend)
    alice_children = alice.sorted_children()
    alice_hashes = child_set_hash_many(alice_children, hash_seed, child_hash_bits)
    alice_hash_to_child = dict(zip(alice_hashes, alice_children))
    alice_child_to_hash = dict(zip(alice_children, alice_hashes))
    alice_hash_table.insert_batch(list(alice_hash_to_child))
    verification = parent_hash(alice, seed)
    transcript.send(
        "alice",
        "child-hash IBLT",
        alice_hash_table.size_bits + WORD_BITS,
        payload=(alice_hash_table, verification),
    )

    # ---- Round 2: Bob replies with his hash IBLT and per-child estimators.
    bob_hash_table = IBLT(hash_params, backend=backend)
    bob_children = bob.sorted_children()
    bob_hashes = child_set_hash_many(bob_children, hash_seed, child_hash_bits)
    bob_hash_to_child = dict(zip(bob_hashes, bob_children))
    bob_child_to_hash = dict(zip(bob_children, bob_hashes))
    bob_hash_table.insert_batch(list(bob_hash_to_child))
    hash_difference = alice_hash_table.subtract(bob_hash_table)
    hash_decode = hash_difference.try_decode()
    if not hash_decode.success:
        return ReconciliationResult(
            False, None, transcript, details={"failure": "hash-iblt-peel"}
        )
    bob_differing = [
        bob_hash_to_child[h] for h in hash_decode.negative if h in bob_hash_to_child
    ]
    bob_estimators: list[tuple[int, SetDifferenceEstimator]] = []
    for child in bob_differing:
        estimator = estimator_factory(estimator_seed)
        estimator.update_all(child, 1)
        bob_estimators.append((bob_child_to_hash[child], estimator))
    round2_bits = bob_hash_table.size_bits + sum(
        child_hash_bits + estimator.size_bits for _, estimator in bob_estimators
    )
    transcript.send(
        "bob",
        "hash IBLT + child estimators",
        round2_bits,
        payload=(bob_hash_table, bob_estimators),
    )

    # ---- Round 3: Alice matches children and sends per-child payloads.
    alice_differing = [
        alice_hash_to_child[h] for h in hash_decode.positive if h in alice_hash_to_child
    ]
    if len(alice_differing) != len(hash_decode.positive):
        return ReconciliationResult(
            False, None, transcript, details={"failure": "hash-collision"}
        )
    cpi_threshold = math.isqrt(difference_bound)
    payloads: list[_ChildPayload] = []
    for child in alice_differing:
        alice_estimator = estimator_factory(estimator_seed)
        alice_estimator.update_all(child, 2)
        best_hash = None
        best_estimate = None
        for bob_hash, bob_estimator in bob_estimators:
            estimate = bob_estimator.merge(alice_estimator).query()
            if best_estimate is None or estimate < best_estimate:
                best_estimate = estimate
                best_hash = bob_hash
        if best_hash is None:
            # Bob reported no differing children at all; send the child
            # explicitly via a CPI message against the empty set.
            best_hash = 0
            best_estimate = len(child)
        bound = max(1, int(math.ceil(estimate_safety * best_estimate)) + 1)
        bound = min(bound, 2 * max_child_size) if max_child_size else bound
        own_hash = alice_child_to_hash[child]
        if best_estimate >= cpi_threshold:
            child_params = IBLTParameters.for_difference(
                bound,
                element_bits,
                derive_seed(seed, "multiround-child-iblt", own_hash),
                num_hashes=3,
                checksum_bits=24,
            )
            payloads.append(
                _ChildPayload(
                    best_hash,
                    own_hash,
                    IBLT.from_items(child_params, child, backend=backend),
                    None,
                )
            )
        else:
            payloads.append(
                _ChildPayload(
                    best_hash,
                    own_hash,
                    None,
                    cpi_encode(
                        child, bound, universe_size, field_kernel=field_kernel
                    ),
                )
            )
    round3_bits = sum(payload.size_bits(child_hash_bits) for payload in payloads)
    transcript.send("alice", "per-child payloads", round3_bits, payload=payloads)

    # ---- Bob recovers Alice's children.
    recovered_children: list[frozenset[int]] = []
    for payload in payloads:
        base_child = bob_hash_to_child.get(payload.target_hash, frozenset())
        recovered: frozenset[int] | None = None
        if payload.iblt is not None:
            base_table = IBLT.from_items(payload.iblt.params, base_child, backend=backend)
            decode = payload.iblt.subtract(base_table).try_decode()
            if decode.success:
                recovered = frozenset(
                    apply_difference(base_child, decode.positive, decode.negative)
                )
        else:
            success, result = cpi_decode(
                payload.cpi,
                set(base_child),
                universe_size,
                seed,
                field_kernel=field_kernel,
            )
            if success:
                recovered = frozenset(result)
        if recovered is None or hash_of(recovered) != payload.own_hash:
            return ReconciliationResult(
                False, None, transcript, details={"failure": "child-recovery"}
            )
        recovered_children.append(recovered)

    reconstruction = bob.replace_children(bob_differing, recovered_children)
    verified = parent_hash(reconstruction, seed) == verification
    return ReconciliationResult(
        verified,
        reconstruction if verified else None,
        transcript,
        details={
            "differing_children_found": len(alice_differing) + len(bob_differing),
            "cpi_payloads": sum(1 for p in payloads if p.cpi is not None),
            "iblt_payloads": sum(1 for p in payloads if p.iblt is not None),
            "failure": None if verified else "verification-hash",
        },
    )


def reconcile_multiround_unknown(
    alice: SetOfSets,
    bob: SetOfSets,
    universe_size: int,
    max_child_size: int,
    seed: int,
    *,
    child_hash_bits: int = 48,
    num_hashes: int = 4,
    backend: str | None = None,
    field_kernel: str | None = None,
    estimator_factory: Callable[[int], SetDifferenceEstimator] | None = None,
    estimate_safety: float = 2.0,
    hash_estimator_factory: Callable[[int], SetDifferenceEstimator] | None = None,
) -> ReconciliationResult:
    """Four-round protocol for unknown ``d`` (Theorem 3.10).

    Bob first sends a set-difference estimator over his child-set hashes;
    Alice uses the estimated number of differing children both as ``d_hat``
    and as a stand-in for ``d`` (scaled by ``max_child_size``) when choosing
    the IBLT-vs-CPI threshold.
    """
    if hash_estimator_factory is None:
        hash_estimator_factory = L0Estimator
    transcript = Transcript()
    hash_seed = derive_seed(seed, "child-hash")
    estimator_seed = derive_seed(seed, "multiround-dhat-estimator")

    bob_estimator = hash_estimator_factory(estimator_seed)
    bob_estimator.update_all(
        (child_set_hash(child, hash_seed, child_hash_bits) for child in bob), 1
    )
    transcript.send(
        "bob", "child-hash estimator", bob_estimator.size_bits, payload=bob_estimator
    )

    alice_estimator = hash_estimator_factory(estimator_seed)
    alice_estimator.update_all(
        (child_set_hash(child, hash_seed, child_hash_bits) for child in alice), 2
    )
    estimated_d_hat = bob_estimator.merge(alice_estimator).query()
    d_hat = max(1, int(round(estimate_safety * estimated_d_hat)) + 1)
    pseudo_d = max(1, d_hat * max(1, max_child_size) // 4)

    result = reconcile_multiround(
        alice,
        bob,
        pseudo_d,
        universe_size,
        max_child_size,
        seed,
        differing_children_bound=d_hat,
        child_hash_bits=child_hash_bits,
        num_hashes=num_hashes,
        backend=backend,
        field_kernel=field_kernel,
        estimator_factory=estimator_factory,
        estimate_safety=estimate_safety,
        transcript=transcript,
    )
    result.details["estimated_differing_children"] = estimated_d_hat
    result.details["differing_children_bound_used"] = d_hat
    return result
