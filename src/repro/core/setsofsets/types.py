"""The parent/child set-of-sets representation.

A :class:`SetOfSets` is an immutable collection of *distinct* child sets of
non-negative integer elements.  It records the parameters the paper's bounds
are stated in: ``s`` (number of child sets), ``h`` (largest child set) and
``n`` (total number of elements).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import ParameterError


class SetOfSets:
    """An immutable set of child sets.

    Parameters
    ----------
    children:
        Any iterable of iterables of non-negative integers.  Duplicate child
        sets are collapsed (use
        :class:`repro.core.setsofsets.nested.MultisetOfMultisets` when
        multiplicities matter).
    """

    __slots__ = ("_children",)

    def __init__(self, children: Iterable[Iterable[int]]) -> None:
        frozen = frozenset(frozenset(child) for child in children)
        for child in frozen:
            for element in child:
                if not isinstance(element, int) or element < 0:
                    raise ParameterError(
                        "child set elements must be non-negative integers"
                    )
        self._children = frozen

    # -- constructors ---------------------------------------------------------------

    @classmethod
    def empty(cls) -> "SetOfSets":
        """A parent set with no children."""
        return cls(())

    # -- parameters of the paper's bounds ---------------------------------------------

    @property
    def children(self) -> frozenset[frozenset[int]]:
        """The child sets (unordered, distinct)."""
        return self._children

    @property
    def num_children(self) -> int:
        """The paper's ``s``: number of child sets."""
        return len(self._children)

    @property
    def max_child_size(self) -> int:
        """The paper's ``h``: size of the largest child set (0 if empty)."""
        return max((len(child) for child in self._children), default=0)

    @property
    def total_elements(self) -> int:
        """The paper's ``n``: sum of the child set sizes."""
        return sum(len(child) for child in self._children)

    @property
    def universe_upper_bound(self) -> int:
        """One more than the largest element present (a lower bound on ``u``)."""
        largest = max((max(child) for child in self._children if child), default=0)
        return largest + 1

    # -- iteration and ordering ---------------------------------------------------------

    def sorted_children(self) -> list[frozenset[int]]:
        """Children in a canonical (deterministic) order."""
        return sorted(self._children, key=lambda child: sorted(child))

    def __iter__(self) -> Iterator[frozenset[int]]:
        return iter(self.sorted_children())

    def __len__(self) -> int:
        return len(self._children)

    def __contains__(self, child: Iterable[int]) -> bool:
        return frozenset(child) in self._children

    # -- algebra ----------------------------------------------------------------------

    def replace_children(
        self, to_remove: Iterable[Iterable[int]], to_add: Iterable[Iterable[int]]
    ) -> "SetOfSets":
        """Return a copy with some children removed and others added.

        This is how the protocols build Bob's reconstruction: remove his
        differing children ``D_B`` and add Alice's recovered children ``D_A``.
        """
        removed = {frozenset(child) for child in to_remove}
        added = {frozenset(child) for child in to_add}
        return SetOfSets((self._children - removed) | added)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SetOfSets):
            return NotImplemented
        return self._children == other._children

    def __hash__(self) -> int:
        return hash(self._children)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetOfSets(s={self.num_children}, h={self.max_child_size}, "
            f"n={self.total_elements})"
        )
