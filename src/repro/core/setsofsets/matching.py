"""Difference measures between two sets of sets.

The paper defines ``d`` as "the value of the minimum cost matching between
Alice and Bob's child sets, where the cost of matching two sets is equal to
their set difference", and notes the protocols actually solve the relaxed
version where every child set only needs to be close to *some* child set of
the other party.  Both quantities are implemented here; they are used by the
workload generators (to verify planted differences) and by tests and
benchmarks, never by the protocols themselves (which only receive bounds).
"""

from __future__ import annotations

import numpy as np

from repro.core.setsofsets.types import SetOfSets

try:  # scipy is an optional test-time dependency; fall back to a greedy bound.
    from scipy.optimize import linear_sum_assignment
except ImportError:  # pragma: no cover - scipy is installed in the dev environment
    linear_sum_assignment = None


def _difference_matrix(alice: SetOfSets, bob: SetOfSets) -> tuple[np.ndarray, list, list]:
    alice_children = alice.sorted_children()
    bob_children = bob.sorted_children()
    matrix = np.zeros((len(alice_children), len(bob_children)), dtype=np.int64)
    for i, a_child in enumerate(alice_children):
        for j, b_child in enumerate(bob_children):
            matrix[i, j] = len(a_child ^ b_child)
    return matrix, alice_children, bob_children


def minimum_matching_difference(alice: SetOfSets, bob: SetOfSets) -> int:
    """The paper's ``d``: minimum-cost perfect matching on child sets.

    Unmatched child sets (when the parents have different numbers of
    children) cost their full size, which corresponds to matching them with
    an empty set.
    """
    matrix, alice_children, bob_children = _difference_matrix(alice, bob)
    size = max(len(alice_children), len(bob_children))
    if size == 0:
        return 0
    padded = np.zeros((size, size), dtype=np.int64)
    for i in range(size):
        for j in range(size):
            if i < len(alice_children) and j < len(bob_children):
                padded[i, j] = matrix[i, j]
            elif i < len(alice_children):
                padded[i, j] = len(alice_children[i])
            elif j < len(bob_children):
                padded[i, j] = len(bob_children[j])
    if linear_sum_assignment is not None:
        rows, cols = linear_sum_assignment(padded)
        return int(padded[rows, cols].sum())
    return _greedy_matching_cost(padded)


def _greedy_matching_cost(padded: np.ndarray) -> int:
    """Greedy upper bound on the matching cost (used only without scipy)."""
    size = padded.shape[0]
    used_cols: set[int] = set()
    total = 0
    order = sorted(range(size), key=lambda row: int(padded[row].min()))
    for row in order:
        best_col = min(
            (col for col in range(size) if col not in used_cols),
            key=lambda col: int(padded[row, col]),
        )
        used_cols.add(best_col)
        total += int(padded[row, best_col])
    return total


def relaxed_difference(alice: SetOfSets, bob: SetOfSets) -> int:
    """The relaxed measure the protocols tolerate (Section 3.1).

    Sum over each of Alice's child sets of its minimum difference to *any* of
    Bob's child sets, plus the symmetric term.  Always at most twice the
    matching difference.
    """
    matrix, alice_children, bob_children = _difference_matrix(alice, bob)
    total = 0
    if len(bob_children):
        for i, child in enumerate(alice_children):
            total += int(matrix[i].min()) if len(bob_children) else len(child)
    else:
        total += sum(len(child) for child in alice_children)
    if len(alice_children):
        for j, child in enumerate(bob_children):
            total += int(matrix[:, j].min()) if len(alice_children) else len(child)
    else:
        total += sum(len(child) for child in bob_children)
    return total


def differing_children_count(alice: SetOfSets, bob: SetOfSets) -> int:
    """The paper's ``d_hat``: number of child sets present on one side only."""
    return len(alice.children ^ bob.children)
