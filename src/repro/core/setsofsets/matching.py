"""Difference measures between two sets of sets.

The paper defines ``d`` as "the value of the minimum cost matching between
Alice and Bob's child sets, where the cost of matching two sets is equal to
their set difference", and notes the protocols actually solve the relaxed
version where every child set only needs to be close to *some* child set of
the other party.  Both quantities are implemented here; they are used by the
workload generators (to verify planted differences) and by tests and
benchmarks, never by the protocols themselves (which only receive bounds).
"""

from __future__ import annotations

from repro.core.setsofsets.types import SetOfSets


def _difference_matrix(
    alice: SetOfSets, bob: SetOfSets
) -> tuple[list[list[int]], list, list]:
    # Plain lists keep this module importable without NumPy; the matrices are
    # s x s for parents of s children, far too small to need vectorizing.
    alice_children = alice.sorted_children()
    bob_children = bob.sorted_children()
    matrix = [
        [len(a_child ^ b_child) for b_child in bob_children]
        for a_child in alice_children
    ]
    return matrix, alice_children, bob_children


def minimum_matching_difference(alice: SetOfSets, bob: SetOfSets) -> int:
    """The paper's ``d``: minimum-cost perfect matching on child sets.

    Unmatched child sets (when the parents have different numbers of
    children) cost their full size, which corresponds to matching them with
    an empty set.
    """
    matrix, alice_children, bob_children = _difference_matrix(alice, bob)
    size = max(len(alice_children), len(bob_children))
    if size == 0:
        return 0
    padded = [[0] * size for _ in range(size)]
    for i in range(size):
        for j in range(size):
            if i < len(alice_children) and j < len(bob_children):
                padded[i][j] = matrix[i][j]
            elif i < len(alice_children):
                padded[i][j] = len(alice_children[i])
            elif j < len(bob_children):
                padded[i][j] = len(bob_children[j])
    return _hungarian_cost(padded)


def _hungarian_cost(cost: list[list[int]]) -> int:
    """Exact minimum-cost perfect matching on a square matrix (O(n^3)).

    The classic potentials formulation of the Hungarian algorithm.  The
    matrices here are s x s for parents of s children, so a dependency-free
    exact solver is both affordable and deterministic (unlike a greedy
    bound, it is symmetric in the two parents).
    """
    size = len(cost)
    infinity = float("inf")
    row_potential = [0] * (size + 1)
    col_potential = [0] * (size + 1)
    col_match = [0] * (size + 1)  # col_match[j] = row assigned to column j
    col_parent = [0] * (size + 1)
    for row in range(1, size + 1):
        col_match[0] = row
        current_col = 0
        min_reduced = [infinity] * (size + 1)
        visited = [False] * (size + 1)
        while True:
            visited[current_col] = True
            current_row = col_match[current_col]
            delta = infinity
            next_col = -1
            for col in range(1, size + 1):
                if visited[col]:
                    continue
                reduced = (
                    cost[current_row - 1][col - 1]
                    - row_potential[current_row]
                    - col_potential[col]
                )
                if reduced < min_reduced[col]:
                    min_reduced[col] = reduced
                    col_parent[col] = current_col
                if min_reduced[col] < delta:
                    delta = min_reduced[col]
                    next_col = col
            for col in range(size + 1):
                if visited[col]:
                    row_potential[col_match[col]] += delta
                    col_potential[col] -= delta
                else:
                    min_reduced[col] -= delta
            current_col = next_col
            if col_match[current_col] == 0:
                break
        while current_col:  # augment along the found path
            parent = col_parent[current_col]
            col_match[current_col] = col_match[parent]
            current_col = parent
    return sum(
        cost[col_match[col] - 1][col - 1] for col in range(1, size + 1)
    )


def relaxed_difference(alice: SetOfSets, bob: SetOfSets) -> int:
    """The relaxed measure the protocols tolerate (Section 3.1).

    Sum over each of Alice's child sets of its minimum difference to *any* of
    Bob's child sets, plus the symmetric term.  Always at most twice the
    matching difference.
    """
    matrix, alice_children, bob_children = _difference_matrix(alice, bob)
    total = 0
    if len(bob_children):
        for i, _child in enumerate(alice_children):
            total += min(matrix[i])
    else:
        total += sum(len(child) for child in alice_children)
    if len(alice_children):
        for j, _child in enumerate(bob_children):
            total += min(matrix[i][j] for i in range(len(alice_children)))
    else:
        total += sum(len(child) for child in bob_children)
    return total


def differing_children_count(alice: SetOfSets, bob: SetOfSets) -> int:
    """The paper's ``d_hat``: number of child sets present on one side only."""
    return len(alice.children ^ bob.children)
