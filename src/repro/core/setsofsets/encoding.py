"""Child-set encodings used by the structured set-of-sets protocols.

Algorithm 1 represents each child set as a *(child IBLT, hash)* pair -- the
"child encoding" -- and inserts those encodings as keys into a parent IBLT.
This module provides:

* canonical hashing of a child set (both parties compute identical hashes),
  in scalar (:func:`child_set_hash`) and batch (:func:`child_set_hash_many`)
  forms;
* packing / unpacking of a child encoding into a fixed-width integer key --
  :meth:`ChildEncodingScheme.encode_all` batches the whole parent set
  through one :class:`~repro.iblt.multi.IBLTArray` pass;
* a per-reconcile cache of candidate child tables for the decode side
  (:class:`ChildTableCache`);
* explicit (raw) encodings of whole child sets, used by the naive protocol
  of Theorem 3.3 and the ``T*`` table of Algorithm 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import CapacityError, ParameterError
from repro.hashing import SeededHasher, derive_seed, int_to_bytes
from repro.iblt import IBLT, IBLTArray, IBLTParameters


# ---------------------------------------------------------------------------
# Child-set hashing
# ---------------------------------------------------------------------------


def child_set_hash_many(
    children: Iterable[Iterable[int]], seed: int, bits: int
) -> list[int]:
    """Canonical ``bits``-wide hashes of many child sets, in order.

    Each hash is computed over the sorted element list, so it is independent
    of iteration order and identical for both parties.  The paper asks for an
    ``O(log s)``-bit pairwise-independent hash; 48 bits (the library default
    set by the protocols) keeps collision probability among ``O(s^2)`` pairs
    negligible for any realistic ``s``.  The seeded hasher is derived once
    for the whole batch, which matters when a protocol hashes thousands of
    small children.
    """
    hasher = SeededHasher(derive_seed(seed, "child-set-hash"), bits)
    return [
        hasher.hash_bytes(
            b"".join(int_to_bytes(element, 8) for element in sorted(child))
        )
        for child in children
    ]


def child_set_hash(child: Iterable[int], seed: int, bits: int) -> int:
    """Scalar form of :func:`child_set_hash_many` (identical hash values)."""
    return child_set_hash_many([child], seed, bits)[0]


def parent_hash(children: Iterable[Iterable[int]], seed: int, bits: int = 64) -> int:
    """Verification hash of a whole parent set (order independent).

    Protocols send this tiny hash alongside their main payload so Bob can
    verify his reconstruction (the replication / verification trick described
    at the end of Section 3.2).
    """
    hasher = SeededHasher(derive_seed(seed, "parent-hash"), bits)
    combined = 0
    for child_hash in child_set_hash_many(children, seed, bits):
        combined ^= child_hash
    return hasher.hash_int(combined)


# ---------------------------------------------------------------------------
# (child IBLT, hash) encodings -- keys of the parent IBLT
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChildEncodingScheme:
    """Shared description of how child sets are encoded into parent-IBLT keys.

    Parameters
    ----------
    child_params:
        IBLT parameters used for every child IBLT at this level; fully
        determines the serialized child-IBLT width.
    hash_bits:
        Width of the child-set hash appended to the serialized child IBLT.
    seed:
        Seed for the child-set hash (shared).
    """

    child_params: IBLTParameters
    hash_bits: int
    seed: int

    def __post_init__(self) -> None:
        if self.hash_bits < 8:
            raise ParameterError("hash_bits must be at least 8")

    @property
    def key_bits(self) -> int:
        """Width of a full child encoding (serialized child IBLT + hash)."""
        return self.child_params.size_bits + self.hash_bits

    def encode(self, child: Iterable[int], backend: str | None = None) -> int:
        """Encode a child set into a fixed-width integer key.

        ``backend`` picks the cell store used to build the child IBLT (the
        encoding itself is backend-independent: identical bits either way).
        """
        child = list(child)
        table = IBLT.from_items(self.child_params, child, backend=backend)
        serialized = table.serialize()
        return (serialized << self.hash_bits) | child_set_hash(
            child, self.seed, self.hash_bits
        )

    def encode_all(
        self, children: Iterable[Iterable[int]], backend: str | None = None
    ) -> list[int]:
        """Encode many child sets (the batch form protocols feed to
        :meth:`~repro.iblt.table.IBLT.insert_batch`).

        All child IBLTs are materialized in one pass through
        :class:`~repro.iblt.multi.IBLTArray` -- one flat hashing-and-scatter
        over every ``(child_index, element)`` pair -- and the child hashes
        through :func:`child_set_hash_many`.  The keys are bit-identical to
        calling :meth:`encode` per child.
        """
        children = [list(child) for child in children]
        array = IBLTArray(self.child_params, children, backend=backend)
        hashes = child_set_hash_many(children, self.seed, self.hash_bits)
        return [
            (serialized << self.hash_bits) | child_hash
            for serialized, child_hash in zip(array.serialize_all(), hashes)
        ]

    def decode(self, key: int, backend: str | None = None) -> tuple[IBLT, int]:
        """Split a key back into ``(child IBLT, child hash)``."""
        if key < 0 or key.bit_length() > self.key_bits:
            raise CapacityError("encoded child key does not match the scheme")
        child_hash = key & ((1 << self.hash_bits) - 1)
        table = IBLT.deserialize(
            self.child_params, key >> self.hash_bits, backend=backend
        )
        return table, child_hash

    def hash_of(self, child: Iterable[int]) -> int:
        """The hash component alone (cheap lookup key)."""
        return child_set_hash(child, self.seed, self.hash_bits)


class ChildTableCache:
    """Per-reconcile cache of candidate child IBLTs for one encoding scheme.

    Bob's decode loops subtract a candidate child's table from each of
    Alice's decoded child encodings.  Rebuilding the candidate table inside
    that doubly nested loop costs ``O(d_hat^2)`` redundant table builds; this
    cache builds each candidate's table exactly once per reconcile call
    (batched through :class:`~repro.iblt.multi.IBLTArray`) and hands out the
    same table for every Alice key.  Tables handed out must not be mutated
    (subtracting *from* them is fine: :meth:`IBLT.subtract` copies).
    """

    def __init__(self, scheme: ChildEncodingScheme, backend: str | None = None) -> None:
        self._scheme = scheme
        self._backend = backend
        self._tables: dict[frozenset[int], IBLT] = {}

    def add_children(self, children: Iterable[Iterable[int]]) -> None:
        """Batch-build tables for any children not already cached."""
        missing: list[frozenset[int]] = []
        seen = set()
        for child in children:
            frozen = frozenset(child)
            if frozen not in self._tables and frozen not in seen:
                seen.add(frozen)
                missing.append(frozen)
        if not missing:
            return
        array = IBLTArray(self._scheme.child_params, missing, backend=self._backend)
        for index, child in enumerate(missing):
            self._tables[child] = array.table(index)

    def get(self, child: Iterable[int]) -> IBLT:
        """The candidate's table (built on first request if not yet cached)."""
        frozen = frozenset(child)
        if frozen not in self._tables:
            self.add_children([frozen])
        return self._tables[frozen]

    def __len__(self) -> int:
        return len(self._tables)


# ---------------------------------------------------------------------------
# Explicit (raw) child encodings -- the naive protocol and T*
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExplicitChildScheme:
    """Encode a whole child set explicitly into a fixed-width integer key.

    Theorem 3.3 charges ``min(h log u, u)`` bits per child set: whichever of
    the two canonical encodings is smaller is used --

    * *bitmap*: one bit per universe element (total ``u`` bits), or
    * *packed list*: the at most ``h`` elements written as sorted
      ``1 + log u``-bit values (a leading 1 bit distinguishes "element
      present" slots from padding so sets of different sizes stay distinct).
    """

    universe_size: int
    max_child_size: int

    def __post_init__(self) -> None:
        if self.universe_size <= 0:
            raise ParameterError("universe_size must be positive")
        if self.max_child_size < 0:
            raise ParameterError("max_child_size must be non-negative")

    @property
    def element_bits(self) -> int:
        return max(1, (self.universe_size - 1).bit_length())

    @property
    def uses_bitmap(self) -> bool:
        packed = self.max_child_size * (self.element_bits + 1)
        return self.universe_size <= packed

    @property
    def key_bits(self) -> int:
        """Width of the explicit encoding (``min(h (log u + 1), u)``)."""
        packed = max(1, self.max_child_size * (self.element_bits + 1))
        return min(self.universe_size, packed) if self.max_child_size else 1

    def encode(self, child: Iterable[int]) -> int:
        child = sorted(set(child))
        if len(child) > self.max_child_size:
            raise CapacityError(
                f"child set of size {len(child)} exceeds max_child_size "
                f"{self.max_child_size}"
            )
        if any(element >= self.universe_size for element in child):
            raise CapacityError("child set element outside the universe")
        if self.uses_bitmap:
            encoded = 0
            for element in child:
                encoded |= 1 << element
            return encoded
        encoded = 0
        slot_bits = self.element_bits + 1
        for element in child:
            encoded = (encoded << slot_bits) | (1 << self.element_bits) | element
        return encoded

    def decode(self, key: int) -> frozenset[int]:
        if self.uses_bitmap:
            elements = []
            index = 0
            while key:
                if key & 1:
                    elements.append(index)
                key >>= 1
                index += 1
            return frozenset(elements)
        slot_bits = self.element_bits + 1
        element_mask = (1 << self.element_bits) - 1
        elements = []
        while key:
            slot = key & ((1 << slot_bits) - 1)
            if slot >> self.element_bits:
                elements.append(slot & element_mask)
            key >>= slot_bits
        return frozenset(elements)
