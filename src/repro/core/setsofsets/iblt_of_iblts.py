"""The IBLT-of-IBLTs protocol (Algorithm 1, Theorem 3.5, Corollary 3.6).

Each child set is encoded as a *(child IBLT, hash)* pair; the encodings are
themselves keys of a parent IBLT.  Bob decodes the parent table to learn
which child encodings differ, then decodes pairs of child IBLTs against his
own differing children to recover Alice's child sets element-by-element --
paying ``O(d)`` cells per differing child instead of re-sending whole
children as the naive protocol does.

Communication: ``O(d_hat * d log u + d_hat log s)`` bits, one round.
Computation: ``O(n + d_hat^2 d)``.
The unknown-``d`` variant retries with doubled bounds (Corollary 3.6).
"""

from __future__ import annotations

from repro.comm import ReconciliationResult, Transcript, WORD_BITS
from repro.core.setrecon.difference import apply_difference, max_element_bits
from repro.core.setsofsets.encoding import (
    ChildEncodingScheme,
    ChildTableCache,
    parent_hash,
)
from repro.core.setsofsets.types import SetOfSets
from repro.errors import ParameterError
from repro.hashing import derive_seed
from repro.iblt import IBLT, IBLTParameters


def _child_scheme(
    difference_bound: int,
    universe_size: int,
    seed: int,
    child_hash_bits: int,
    level: object = "flat",
) -> ChildEncodingScheme:
    """Child-IBLT encoding scheme shared by both parties."""
    child_params = IBLTParameters.for_difference(
        max(1, difference_bound),
        max_element_bits(universe_size),
        derive_seed(seed, "child-iblt", level),
        num_hashes=3,
        checksum_bits=24,
        count_bits=16,
    )
    return ChildEncodingScheme(child_params, child_hash_bits, derive_seed(seed, "child-hash"))


def _recover_child(
    scheme: ChildEncodingScheme,
    alice_key: int,
    candidate_children: list[frozenset[int]],
    candidate_tables: ChildTableCache,
    backend: str | None = None,
) -> frozenset[int] | None:
    """Try to decode one of Alice's child encodings against candidate children.

    Returns Alice's recovered child set, or ``None`` if no candidate decodes
    to a set matching the encoding's hash.  Candidate tables come from the
    per-reconcile cache, so each candidate's table is built exactly once no
    matter how many of Alice's keys it is tried against.
    """
    alice_table, alice_hash = scheme.decode(alice_key, backend=backend)
    for candidate in candidate_children:
        decode = alice_table.subtract(candidate_tables.get(candidate)).try_decode()
        if not decode.success:
            continue
        recovered = frozenset(
            apply_difference(candidate, decode.positive, decode.negative)
        )
        if scheme.hash_of(recovered) == alice_hash:
            return recovered
    return None


def reconcile_iblt_of_iblts(
    alice: SetOfSets,
    bob: SetOfSets,
    difference_bound: int,
    universe_size: int,
    seed: int,
    *,
    differing_children_bound: int | None = None,
    child_hash_bits: int = 48,
    num_hashes: int = 4,
    backend: str | None = None,
    fallback_to_all_children: bool = True,
    transcript: Transcript | None = None,
) -> ReconciliationResult:
    """One-round IBLT-of-IBLTs protocol for known ``d`` (Theorem 3.5).

    Parameters
    ----------
    alice, bob:
        The two parent sets.
    difference_bound:
        Upper bound ``d`` on the total number of element differences, which
        also bounds the difference between any matched child pair.
    universe_size:
        Element universe size ``u``.
    seed:
        Shared seed.
    differing_children_bound:
        Upper bound ``d_hat`` on the number of differing child sets; defaults
        to ``difference_bound``.
    child_hash_bits:
        Width of the per-child identification hash (the paper's O(log s)).
    backend:
        Cell-store backend for every table the protocol builds (parent
        tables with wide keys fall back to the pure-Python store
        automatically; see :mod:`repro.config`).
    fallback_to_all_children:
        When True, a child encoding that fails to decode against Bob's
        differing children is retried against his remaining children.  This
        covers the relaxed difference model at extra (local) computation.
    """
    if difference_bound < 0:
        raise ParameterError("difference_bound must be non-negative")
    transcript = transcript if transcript is not None else Transcript()
    d_hat = (
        differing_children_bound
        if differing_children_bound is not None
        else max(1, difference_bound)
    )

    scheme = _child_scheme(difference_bound, universe_size, seed, child_hash_bits)
    # Up to 2 * d_hat child encodings (one per side of each differing pair)
    # can remain in the parent table, so size it accordingly.
    parent_params = IBLTParameters.for_difference(
        2 * max(1, d_hat),
        scheme.key_bits,
        derive_seed(seed, "parent-iblt"),
        num_hashes,
    )

    # Alice encodes every child and transmits the parent table (batch insert).
    alice_table = IBLT(parent_params, backend=backend)
    alice_table.insert_batch(scheme.encode_all(alice, backend=backend))
    verification = parent_hash(alice, seed)
    transcript.send(
        "alice",
        "parent IBLT of child encodings",
        alice_table.size_bits + WORD_BITS,
        payload=(alice_table, verification),
    )

    # Bob removes his encodings (batch-built, one flat pass) and decodes the
    # differing ones.
    bob_children = bob.sorted_children()
    bob_encoding_to_child = dict(
        zip(scheme.encode_all(bob_children, backend=backend), bob_children)
    )
    difference_table = alice_table.copy()
    difference_table.delete_batch(list(bob_encoding_to_child))
    decode = difference_table.try_decode()
    if not decode.success:
        return ReconciliationResult(
            False, None, transcript, details={"failure": "parent-iblt-peel"}
        )

    differing_bob_children = [
        bob_encoding_to_child[key]
        for key in decode.negative
        if key in bob_encoding_to_child
    ]
    if len(differing_bob_children) != len(decode.negative):
        # A negative key we never inserted: checksum corruption in the parent.
        return ReconciliationResult(
            False, None, transcript, details={"failure": "parent-checksum"}
        )

    other_children = (
        [child for child in bob_children if child not in set(differing_bob_children)]
        if fallback_to_all_children
        else []
    )

    # Candidate child tables are built once per reconcile call and shared
    # across every one of Alice's keys; the fallback candidates are only
    # built if some encoding actually needs them.
    candidate_tables = ChildTableCache(scheme, backend=backend)
    if decode.positive:
        candidate_tables.add_children(differing_bob_children)

    recovered_children: list[frozenset[int]] = []
    for alice_key in decode.positive:
        recovered = _recover_child(
            scheme, alice_key, differing_bob_children, candidate_tables,
            backend=backend,
        )
        if recovered is None and fallback_to_all_children:
            candidate_tables.add_children(other_children)
            recovered = _recover_child(
                scheme, alice_key, other_children, candidate_tables, backend=backend
            )
        if recovered is None:
            return ReconciliationResult(
                False, None, transcript, details={"failure": "child-iblt-decode"}
            )
        recovered_children.append(recovered)

    reconstruction = bob.replace_children(differing_bob_children, recovered_children)
    verified = parent_hash(reconstruction, seed) == verification
    return ReconciliationResult(
        verified,
        reconstruction if verified else None,
        transcript,
        details={
            "differing_children_found": len(decode.positive) + len(decode.negative),
            "failure": None if verified else "verification-hash",
        },
    )


def reconcile_iblt_of_iblts_unknown(
    alice: SetOfSets,
    bob: SetOfSets,
    universe_size: int,
    seed: int,
    *,
    initial_bound: int = 1,
    max_bound: int | None = None,
    child_hash_bits: int = 48,
    num_hashes: int = 4,
    backend: str | None = None,
) -> ReconciliationResult:
    """Repeated-doubling variant for unknown ``d`` (Corollary 3.6).

    Runs the known-``d`` protocol with ``d = 1, 2, 4, ...`` until Bob's
    reconstruction verifies against Alice's parent hash; Bob signals each
    failure with a one-word negative acknowledgement, giving ``O(log d)``
    rounds overall.  The final doubling is clamped to ``max_bound`` so the
    largest permitted bound is always attempted (a true ``d`` between the
    last power of two and ``max_bound`` would otherwise never be tried).
    """
    if max_bound is None:
        max_bound = 2 * max(1, alice.total_elements + bob.total_elements)
    transcript = Transcript()
    bound = max(1, initial_bound)
    attempts = 0
    while bound <= max_bound:
        attempts += 1
        attempt_seed = derive_seed(seed, "doubling", attempts)
        result = reconcile_iblt_of_iblts(
            alice,
            bob,
            bound,
            universe_size,
            attempt_seed,
            child_hash_bits=child_hash_bits,
            num_hashes=num_hashes,
            backend=backend,
            transcript=transcript,
        )
        if result.success:
            result.attempts = attempts
            result.details["final_difference_bound"] = bound
            return result
        transcript.send("bob", "retry request", WORD_BITS)
        if bound >= max_bound:
            break
        bound = min(2 * bound, max_bound)
    return ReconciliationResult(
        False,
        None,
        transcript,
        attempts=attempts,
        details={"failure": "exceeded-max-bound", "max_bound": max_bound},
    )
