"""The IBLT-of-IBLTs protocol (Algorithm 1, Theorem 3.5, Corollary 3.6).

Each child set is encoded as a *(child IBLT, hash)* pair; the encodings are
themselves keys of a parent IBLT.  Bob decodes the parent table to learn
which child encodings differ, then decodes pairs of child IBLTs against his
own differing children to recover Alice's child sets element-by-element --
paying ``O(d)`` cells per differing child instead of re-sending whole
children as the naive protocol does.

Communication: ``O(d_hat * d log u + d_hat log s)`` bits, one round.
Computation: ``O(n + d_hat^2 d)``.
The unknown-``d`` variant retries with doubled bounds (Corollary 3.6).

The protocol logic lives in :mod:`repro.protocols.parties.setsofsets`; the
functions here are the backward-compatible entry points (in-memory session).
"""

from __future__ import annotations

from repro.comm import ReconciliationResult, Transcript
from repro.core.setsofsets.types import SetOfSets


def reconcile_iblt_of_iblts(
    alice: SetOfSets,
    bob: SetOfSets,
    difference_bound: int,
    universe_size: int,
    seed: int,
    *,
    differing_children_bound: int | None = None,
    child_hash_bits: int = 48,
    num_hashes: int = 4,
    backend: str | None = None,
    fallback_to_all_children: bool = True,
    transcript: Transcript | None = None,
) -> ReconciliationResult:
    """One-round IBLT-of-IBLTs protocol for known ``d`` (Theorem 3.5).

    Parameters
    ----------
    alice, bob:
        The two parent sets.
    difference_bound:
        Upper bound ``d`` on the total number of element differences, which
        also bounds the difference between any matched child pair.
    universe_size:
        Element universe size ``u``.
    seed:
        Shared seed.
    differing_children_bound:
        Upper bound ``d_hat`` on the number of differing child sets; defaults
        to ``difference_bound``.
    child_hash_bits:
        Width of the per-child identification hash (the paper's O(log s)).
    backend:
        Cell-store backend for every table the protocol builds (parent
        tables with wide keys fall back to the pure-Python store
        automatically; see :mod:`repro.config`).
    fallback_to_all_children:
        When True, a child encoding that fails to decode against Bob's
        differing children is retried against his remaining children.  This
        covers the relaxed difference model at extra (local) computation.
    """
    from repro.protocols.parties.setsofsets import context_for, iblt_of_iblts_parties
    from repro.protocols.session import run_session

    ctx = context_for(
        alice,
        bob,
        universe_size,
        seed,
        differing_children_bound=differing_children_bound,
        child_hash_bits=child_hash_bits,
        num_hashes=num_hashes,
        backend=backend,
        fallback_to_all_children=fallback_to_all_children,
    )
    alice_party, bob_party = iblt_of_iblts_parties(alice, bob, difference_bound, ctx)
    return run_session(alice_party, bob_party, transcript=transcript)


def reconcile_iblt_of_iblts_unknown(
    alice: SetOfSets,
    bob: SetOfSets,
    universe_size: int,
    seed: int,
    *,
    initial_bound: int = 1,
    max_bound: int | None = None,
    child_hash_bits: int = 48,
    num_hashes: int = 4,
    backend: str | None = None,
) -> ReconciliationResult:
    """Repeated-doubling variant for unknown ``d`` (Corollary 3.6).

    Runs the known-``d`` protocol with ``d = 1, 2, 4, ...`` until Bob's
    reconstruction verifies against Alice's parent hash; Bob signals each
    failure with a one-word negative acknowledgement, giving ``O(log d)``
    rounds overall.  The final doubling is clamped to ``max_bound`` so the
    largest permitted bound is always attempted (a true ``d`` between the
    last power of two and ``max_bound`` would otherwise never be tried).
    """
    from repro.protocols.parties.setsofsets import context_for, iblt_of_iblts_parties
    from repro.protocols.session import run_session

    ctx = context_for(
        alice,
        bob,
        universe_size,
        seed,
        child_hash_bits=child_hash_bits,
        num_hashes=num_hashes,
        backend=backend,
    )
    alice_party, bob_party = iblt_of_iblts_parties(
        alice, bob, None, ctx, initial_bound=initial_bound, max_bound=max_bound
    )
    return run_session(alice_party, bob_party)
