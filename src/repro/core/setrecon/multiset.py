"""Multiset reconciliation (Section 3.4).

The paper's reduction: replace a multiset by the set of ``(element, count)``
pairs ("if an element x occurs in the multiset k times, then (x, k) is an
element of the set"), reconcile that set, and read the multiset back.  The
universe grows from ``u`` to ``u * n`` -- reflected here by the pair
encoding's larger key width -- and every bound otherwise carries over.

Multisets are represented as ``dict[int, int]`` mapping element to a positive
multiplicity.
"""

from __future__ import annotations

from typing import Mapping

from repro.comm import ReconciliationResult
from repro.core.setrecon.ibf import reconcile_known_d
from repro.errors import ParameterError


def encode_multiset(multiset: Mapping[int, int], max_multiplicity: int) -> set[int]:
    """Encode a multiset as the set of ``element * (max_multiplicity+1) + count``.

    Parameters
    ----------
    multiset:
        Mapping from element to multiplicity (every multiplicity positive).
    max_multiplicity:
        Upper bound on any multiplicity (the paper's ``n``); both parties
        must agree on it because it fixes the pair encoding.
    """
    if max_multiplicity <= 0:
        raise ParameterError("max_multiplicity must be positive")
    encoded = set()
    base = max_multiplicity + 1
    for element, count in multiset.items():
        if count <= 0:
            raise ParameterError("multiset multiplicities must be positive")
        if count > max_multiplicity:
            raise ParameterError(
                f"multiplicity {count} exceeds max_multiplicity {max_multiplicity}"
            )
        encoded.add(element * base + count)
    return encoded


def decode_multiset(encoded: set[int], max_multiplicity: int) -> dict[int, int]:
    """Inverse of :func:`encode_multiset`."""
    base = max_multiplicity + 1
    multiset: dict[int, int] = {}
    for value in encoded:
        element, count = divmod(value, base)
        if count == 0 or element in multiset:
            raise ParameterError("encoded value is not a valid multiset encoding")
        multiset[element] = count
    return multiset


def multiset_symmetric_difference(
    first: Mapping[int, int], second: Mapping[int, int]
) -> int:
    """Total number of element insertions/deletions separating two multisets."""
    elements = set(first) | set(second)
    return sum(abs(first.get(element, 0) - second.get(element, 0)) for element in elements)


def reconcile_multiset_known_d(
    alice: Mapping[int, int],
    bob: Mapping[int, int],
    difference_bound: int,
    universe_size: int,
    max_multiplicity: int,
    seed: int,
) -> ReconciliationResult:
    """One-round IBLT reconciliation of multisets with a known bound.

    The bound counts differing ``(element, count)`` pairs; note that a single
    multiplicity change touches two pairs (the old and the new), so callers
    following the paper's ``d`` (number of element additions/deletions)
    should pass ``2 * d`` to be safe -- the convenience wrapper in the
    sets-of-sets layer does exactly that.
    """
    encoded_alice = encode_multiset(alice, max_multiplicity)
    encoded_bob = encode_multiset(bob, max_multiplicity)
    pair_universe = universe_size * (max_multiplicity + 1) + max_multiplicity + 1
    result = reconcile_known_d(
        encoded_alice,
        encoded_bob,
        difference_bound,
        pair_universe,
        seed,
    )
    if result.success:
        result.recovered = decode_multiset(result.recovered, max_multiplicity)
    return result
