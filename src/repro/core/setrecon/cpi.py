"""Characteristic-polynomial set reconciliation (Theorem 2.3).

Minsky, Trachtenberg and Zippel's protocol: Alice evaluates the
characteristic polynomial ``chi_A(z) = prod_{x in S_A} (z - x)`` of her set
at ``d + 1`` shared points of a prime field and sends the evaluations plus
``|S_A|``.  Bob evaluates his own characteristic polynomial at the same
points, forms the ratio ``chi_A / chi_B`` and interpolates it as a rational
function whose numerator/denominator degrees are fixed by the size
difference.  The roots of the reduced numerator are ``S_A \\ S_B`` and the
roots of the reduced denominator are ``S_B \\ S_A``.

Unlike the IBLT protocol, this succeeds with certainty whenever the true
difference is at most the bound ``d`` -- which is why the multi-round
protocol of Theorem 3.9 uses it for the child sets with very small
differences.  The cost is cubic-in-``d`` interpolation (Gaussian elimination)
plus ``O(n d)`` evaluation time, matching the simpler of the two evaluation
strategies discussed under Theorem 2.3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Set

from repro.comm import ReconciliationResult, Transcript
from repro.comm.sizing import bits_for_field_elements, bits_for_value
from repro.core.setrecon.difference import apply_difference
from repro.errors import ParameterError
from repro.field import PrimeField, Polynomial, find_roots
from repro.field.linalg import solve_linear_system
from repro.field.prime import prime_at_least
from repro.hashing import derive_seed


@dataclass(frozen=True)
class CPIMessage:
    """Alice's single message in the characteristic-polynomial protocol.

    Attributes
    ----------
    set_size:
        ``|S_A|``.
    evaluations:
        ``chi_A`` evaluated at the shared points ``z_0, ..., z_{d}``.
    difference_bound:
        The bound ``d`` the evaluations were prepared for.
    prime:
        The field modulus both parties agreed on (derived from the universe
        size, so it does not need to be transmitted).
    """

    set_size: int
    evaluations: tuple[int, ...]
    difference_bound: int
    prime: int

    @property
    def size_bits(self) -> int:
        """Transmitted size: the evaluations plus the set size counter."""
        return bits_for_field_elements(len(self.evaluations), self.prime) + bits_for_value(
            max(1, self.set_size)
        )


def field_for_universe(universe_size: int, difference_bound: int) -> PrimeField:
    """The prime field shared by both parties.

    The modulus must exceed every universe element and every evaluation
    point; evaluation points are placed just above the universe so they can
    never coincide with set elements (keeping ``chi_B`` nonzero there).
    """
    if universe_size <= 0:
        raise ParameterError("universe_size must be positive")
    modulus = prime_at_least(universe_size + difference_bound + 2)
    return PrimeField(modulus)


def evaluation_points(universe_size: int, count: int) -> list[int]:
    """The shared evaluation points ``z_i = universe_size + i``."""
    return [universe_size + index for index in range(count)]


def cpi_encode(
    elements: Set[int], difference_bound: int, universe_size: int
) -> CPIMessage:
    """Alice's side: evaluate her characteristic polynomial at ``d + 1`` points."""
    if difference_bound < 0:
        raise ParameterError("difference_bound must be non-negative")
    field = field_for_universe(universe_size, difference_bound)
    points = evaluation_points(universe_size, difference_bound + 1)
    evaluations = tuple(
        Polynomial.evaluate_from_roots(field, elements, point) for point in points
    )
    return CPIMessage(len(elements), evaluations, difference_bound, field.modulus)


def cpi_decode(
    message: CPIMessage,
    bob: Set[int],
    universe_size: int,
    seed: int = 0,
) -> tuple[bool, set[int] | None]:
    """Bob's side: interpolate the rational function and recover Alice's set.

    Returns ``(success, recovered_set)``.  Failure means the true difference
    exceeded the bound (or, pathologically, the linear system degenerated);
    the caller can retry with a larger bound.
    """
    field = PrimeField(message.prime)
    points = evaluation_points(universe_size, message.difference_bound + 1)
    bob_list = list(bob)
    size_delta = message.set_size - len(bob_list)
    bound = message.difference_bound

    if abs(size_delta) > bound:
        return False, None

    # Choose the number of interpolation samples m_bar >= |delta| with the
    # same parity as the size difference, capped by what Alice sent.
    m_bar = bound if (bound - size_delta) % 2 == 0 else bound + 1
    if m_bar < abs(size_delta):
        m_bar = abs(size_delta)
    if m_bar > len(points):
        return False, None
    deg_num = (m_bar + size_delta) // 2
    deg_den = (m_bar - size_delta) // 2

    bob_evaluations = [
        Polynomial.evaluate_from_roots(field, bob_list, point) for point in points
    ]

    if m_bar == 0:
        numerator = Polynomial.one(field)
        denominator = Polynomial.one(field)
    else:
        # Build the linear system for the non-leading coefficients of the
        # monic numerator P (degree deg_num) and denominator Q (degree deg_den):
        #   P(z_i) - f_i * Q(z_i) = 0   with  f_i = chi_A(z_i) / chi_B(z_i).
        matrix: list[list[int]] = []
        rhs: list[int] = []
        for i in range(m_bar):
            z = field.element(points[i])
            f = field.div(message.evaluations[i], bob_evaluations[i])
            row = []
            power = 1
            for _ in range(deg_num):
                row.append(power)
                power = field.mul(power, z)
            power = 1
            for _ in range(deg_den):
                row.append(field.neg(field.mul(f, power)))
                power = field.mul(power, z)
            matrix.append(row)
            rhs.append(
                field.sub(field.mul(f, field.pow(z, deg_den)), field.pow(z, deg_num))
            )
        solution = solve_linear_system(field, matrix, rhs)
        if solution is None:
            return False, None
        numerator = Polynomial.from_coefficients(
            field, list(solution[:deg_num]) + [1]
        )
        denominator = Polynomial.from_coefficients(
            field, list(solution[deg_num:]) + [1]
        )

    common = numerator.gcd(denominator)
    if common.degree > 0:
        numerator = (numerator // common).monic()
        denominator = (denominator // common).monic()

    rng = random.Random(derive_seed(seed, "cpi-roots"))
    alice_only = find_roots(numerator, rng) if numerator.degree > 0 else []
    bob_only = find_roots(denominator, rng) if denominator.degree > 0 else []

    # The recovered factors must split completely into distinct roots that are
    # genuine universe elements, and the denominator roots must be Bob's.
    if len(alice_only) != numerator.degree or len(bob_only) != denominator.degree:
        return False, None
    if any(root >= universe_size for root in alice_only + bob_only):
        return False, None
    bob_set = set(bob_list)
    if not set(bob_only) <= bob_set or bob_set & set(alice_only):
        return False, None

    recovered = apply_difference(bob_set, alice_only, bob_only)
    if len(recovered) != message.set_size:
        return False, None
    # Spare-point verification: check the reconstruction against the last
    # evaluation Alice sent (it is unused when m_bar < d + 1, and a harmless
    # re-check otherwise).
    check_point = points[-1]
    if (
        Polynomial.evaluate_from_roots(field, recovered, check_point)
        != message.evaluations[-1]
    ):
        return False, None
    return True, recovered


def reconcile_cpi(
    alice: Set[int],
    bob: Set[int],
    difference_bound: int,
    universe_size: int,
    seed: int = 0,
    *,
    transcript: Transcript | None = None,
) -> ReconciliationResult:
    """One-round characteristic-polynomial reconciliation (Theorem 2.3)."""
    transcript = transcript if transcript is not None else Transcript()
    message = cpi_encode(alice, difference_bound, universe_size)
    transcript.send("alice", "CPI evaluations", message.size_bits, payload=message)
    success, recovered = cpi_decode(message, bob, universe_size, seed)
    return ReconciliationResult(
        success,
        recovered,
        transcript,
        details={"difference_bound": difference_bound},
    )
