"""Characteristic-polynomial set reconciliation (Theorem 2.3).

Minsky, Trachtenberg and Zippel's protocol: Alice evaluates the
characteristic polynomial ``chi_A(z) = prod_{x in S_A} (z - x)`` of her set
at ``d + 1`` shared points of a prime field and sends the evaluations plus
``|S_A|``.  Bob evaluates his own characteristic polynomial at the same
points, forms the ratio ``chi_A / chi_B`` and interpolates it as a rational
function whose numerator/denominator degrees are fixed by the size
difference.  The roots of the reduced numerator are ``S_A \\ S_B`` and the
roots of the reduced denominator are ``S_B \\ S_A``.

Unlike the IBLT protocol, this succeeds with certainty whenever the true
difference is at most the bound ``d`` -- which is why the multi-round
protocol of Theorem 3.9 uses it for the child sets with very small
differences.  The cost is cubic-in-``d`` interpolation (Gaussian elimination)
plus ``O(n d)`` evaluation time, matching the simpler of the two evaluation
strategies discussed under Theorem 2.3.

Every field-heavy step (batch evaluation, system assembly, elimination,
root finding) runs through the pluggable field kernels of
:mod:`repro.field.kernels`; pass ``field_kernel=`` to pin one, or leave it
``None`` for the process default (vectorized NumPy when usable).  Messages,
transcripts and recovered sets are bit-identical across kernels.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Set

from repro.comm import ReconciliationResult, Transcript
from repro.comm.sizing import bits_for_field_elements, bits_for_value
from repro.core.setrecon.difference import apply_difference
from repro.errors import ParameterError
from repro.field import PrimeField, Polynomial, find_roots
from repro.field.gfp import prime_field
from repro.field.kernels import kernel_for, use_kernel
from repro.field.linalg import rational_interpolation_system, solve_linear_system
from repro.field.prime import prime_at_least
from repro.hashing import derive_seed


@dataclass(frozen=True)
class CPIMessage:
    """Alice's single message in the characteristic-polynomial protocol.

    Attributes
    ----------
    set_size:
        ``|S_A|``.
    evaluations:
        ``chi_A`` evaluated at the shared points ``z_0, ..., z_{d}``.
    difference_bound:
        The bound ``d`` the evaluations were prepared for.
    prime:
        The field modulus both parties agreed on (derived from the universe
        size, so it does not need to be transmitted).
    """

    set_size: int
    evaluations: tuple[int, ...]
    difference_bound: int
    prime: int

    @property
    def size_bits(self) -> int:
        """Transmitted size: the evaluations plus the set size counter."""
        return bits_for_field_elements(len(self.evaluations), self.prime) + bits_for_value(
            max(1, self.set_size)
        )


@lru_cache(maxsize=4096)
def field_for_universe(universe_size: int, difference_bound: int) -> PrimeField:
    """The prime field shared by both parties.

    The modulus must exceed every universe element and every evaluation
    point; evaluation points are placed just above the universe so they can
    never coincide with set elements (keeping ``chi_B`` nonzero there).
    Memoized: the multiround protocol derives the same field for every one
    of its per-child CPI exchanges, and re-running the probable-prime search
    each time dominated small decodes.
    """
    if universe_size <= 0:
        raise ParameterError("universe_size must be positive")
    modulus = prime_at_least(universe_size + difference_bound + 2)
    return prime_field(modulus)


def evaluation_points(universe_size: int, count: int) -> list[int]:
    """The shared evaluation points ``z_i = universe_size + i``."""
    return [universe_size + index for index in range(count)]


def cpi_encode(
    elements: Set[int],
    difference_bound: int,
    universe_size: int,
    *,
    field_kernel: str | None = None,
) -> CPIMessage:
    """Alice's side: evaluate her characteristic polynomial at ``d + 1`` points.

    All ``d + 1`` evaluations are produced by one batched pass over the set
    (:meth:`~repro.field.poly.Polynomial.evaluate_from_roots_many`).
    """
    if difference_bound < 0:
        raise ParameterError("difference_bound must be non-negative")
    field = field_for_universe(universe_size, difference_bound)
    points = evaluation_points(universe_size, difference_bound + 1)
    kernel = kernel_for(field.modulus, field_kernel)
    evaluations = tuple(
        Polynomial.evaluate_from_roots_many(field, elements, points, kernel=kernel)
    )
    return CPIMessage(len(elements), evaluations, difference_bound, field.modulus)


def cpi_decode(
    message: CPIMessage,
    bob: Set[int],
    universe_size: int,
    seed: int = 0,
    *,
    field_kernel: str | None = None,
) -> tuple[bool, set[int] | None]:
    """Bob's side: interpolate the rational function and recover Alice's set.

    Returns ``(success, recovered_set)``.  Failure means the true difference
    exceeded the bound (or, pathologically, the linear system degenerated);
    the caller can retry with a larger bound.
    """
    bound = message.difference_bound
    bob_list = list(bob)
    size_delta = message.set_size - len(bob_list)

    # Short-circuits that need no field arithmetic at all come first: the
    # multiround protocol probes many children whose size difference already
    # exceeds the per-child bound, and used to pay a primality check plus a
    # full evaluation pass before noticing.
    if abs(size_delta) > bound:
        return False, None

    # Choose the number of interpolation samples m_bar >= |delta| with the
    # same parity as the size difference, capped by what Alice sent.
    m_bar = bound if (bound - size_delta) % 2 == 0 else bound + 1
    if m_bar < abs(size_delta):
        m_bar = abs(size_delta)
    if m_bar > bound + 1:
        return False, None
    deg_num = (m_bar + size_delta) // 2
    deg_den = (m_bar - size_delta) // 2

    field = prime_field(message.prime)
    kernel = kernel_for(field.modulus, field_kernel)
    points = evaluation_points(universe_size, bound + 1)

    with use_kernel(field_kernel):
        bob_evaluations = Polynomial.evaluate_from_roots_many(
            field, bob_list, points, kernel=kernel
        )

        if m_bar == 0:
            numerator = Polynomial.one(field)
            denominator = Polynomial.one(field)
        else:
            # Linear system for the non-leading coefficients of the monic
            # numerator P (degree deg_num) and denominator Q (degree deg_den):
            #   P(z_i) - f_i * Q(z_i) = 0   with  f_i = chi_A(z_i) / chi_B(z_i).
            matrix, rhs = rational_interpolation_system(
                field,
                points[:m_bar],
                message.evaluations[:m_bar],
                bob_evaluations[:m_bar],
                deg_num,
                deg_den,
                kernel=kernel,
            )
            solution = solve_linear_system(field, matrix, rhs, kernel=kernel)
            if solution is None:
                return False, None
            # Kernel solutions are canonical residues and the forced leading
            # 1 keeps the tuples trimmed, so skip from_coefficients here.
            numerator = Polynomial(field, tuple(solution[:deg_num]) + (1,))
            denominator = Polynomial(field, tuple(solution[deg_num:]) + (1,))

        common = numerator.gcd(denominator)
        if common.degree > 0:
            numerator = (numerator // common).monic()
            denominator = (denominator // common).monic()

        # lint: allow[D301] seeded from the protocol seed; decode-side search
        rng = random.Random(derive_seed(seed, "cpi-roots"))
        alice_only = (
            find_roots(numerator, rng, kernel=kernel) if numerator.degree > 0 else []
        )
        # The denominator's roots must be elements Bob holds, so instead of a
        # second Cantor-Zassenhaus factorisation we batch-evaluate it over
        # Bob's set and read the zeros off.  If any root lies outside Bob's
        # set, fewer than ``degree`` zeros show up and decoding fails exactly
        # as it would have after a full factorisation.
        if denominator.degree > 0:
            denom_values = denominator.evaluate_many(bob_list, kernel=kernel)
            bob_only = [
                element
                for element, value in zip(bob_list, denom_values)
                if value == 0
            ]
        else:
            bob_only = []

        # The recovered factors must split completely into distinct roots that
        # are genuine universe elements, and the denominator roots must be
        # Bob's (guaranteed for bob_only, which was read off Bob's set).
        if len(alice_only) != numerator.degree or len(bob_only) != denominator.degree:
            return False, None
        if any(root >= universe_size for root in alice_only + bob_only):
            return False, None
        bob_set = bob if isinstance(bob, (set, frozenset)) else set(bob_list)
        if bob_set & set(alice_only):
            return False, None

        recovered = apply_difference(bob_set, alice_only, bob_only)
        if len(recovered) != message.set_size:
            return False, None
        # Spare-point verification: check the reconstruction against the last
        # evaluation Alice sent (it is unused when m_bar < d + 1, and a harmless
        # re-check otherwise).
        check_point = points[-1]
        check_value = Polynomial.evaluate_from_roots_many(
            field, recovered, [check_point], kernel=kernel
        )[0]
        if check_value != message.evaluations[-1]:
            return False, None
        return True, recovered


def reconcile_cpi(
    alice: Set[int],
    bob: Set[int],
    difference_bound: int,
    universe_size: int,
    seed: int = 0,
    *,
    field_kernel: str | None = None,
    transcript: Transcript | None = None,
) -> ReconciliationResult:
    """One-round characteristic-polynomial reconciliation (Theorem 2.3).

    Thin wrapper over the party state machines of
    :mod:`repro.protocols.parties.setrecon` (in-memory session).
    """
    from repro.protocols.parties.setrecon import cpi_parties
    from repro.protocols.session import run_session

    alice_party, bob_party = cpi_parties(
        alice, bob, difference_bound, universe_size, seed, field_kernel=field_kernel
    )
    return run_session(alice_party, bob_party, transcript=transcript)
