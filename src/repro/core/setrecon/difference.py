"""Small utilities shared by the set reconciliation protocols."""

from __future__ import annotations

from typing import Iterable, Set


def symmetric_difference_size(first: Set[int], second: Set[int]) -> int:
    """``|first xor second|`` -- the quantity the paper calls ``d``."""
    return len(set(first) ^ set(second))


def apply_difference(
    base: Set[int], to_add: Iterable[int], to_remove: Iterable[int]
) -> set[int]:
    """Apply a decoded difference to a set.

    ``to_add`` are elements the other party has that ``base`` lacks
    (``S_A \\ S_B``), ``to_remove`` are elements ``base`` has that the other
    party lacks (``S_B \\ S_A``); the result is the other party's set.
    """
    result = set(base)
    result.difference_update(to_remove)
    result.update(to_add)
    return result


def max_element_bits(universe_size: int) -> int:
    """Bit width of elements drawn from ``[0, universe_size)``."""
    return max(1, (universe_size - 1).bit_length()) if universe_size > 1 else 1
