"""IBLT-based set reconciliation (Corollaries 2.2 and 3.2).

Known-``d`` protocol (one round): Alice encodes her set into an ``O(d)`` cell
IBLT and sends it with a whole-set verification hash; Bob deletes his
elements, peels the remainder, and applies the recovered difference to his
own set.  Unknown-``d`` protocol (two rounds): Bob first sends a set
difference estimator, Alice queries it to obtain a bound, then the known-``d``
protocol runs.

The protocol logic lives in the party state machines of
:mod:`repro.protocols.parties.setrecon`; the functions here are the
backward-compatible entry points, running both parties over an in-memory
session.  ``repro.reconcile(..., protocol="ibf")`` runs the same parties
over any transport.
"""

from __future__ import annotations

from typing import Callable, Set

from repro.comm import ReconciliationResult, Transcript
from repro.estimator import SetDifferenceEstimator


def reconcile_known_d(
    alice: Set[int],
    bob: Set[int],
    difference_bound: int,
    universe_size: int,
    seed: int,
    *,
    num_hashes: int = 4,
    backend: str | None = None,
    transcript: Transcript | None = None,
) -> ReconciliationResult:
    """One-round IBLT set reconciliation with a known difference bound.

    Parameters
    ----------
    alice, bob:
        The two parties' sets of elements from ``[0, universe_size)``.
    difference_bound:
        Upper bound ``d`` on ``|alice xor bob|``.  If the true difference
        exceeds the bound, decoding fails (reported via ``success=False``).
    universe_size:
        Size ``u`` of the element universe; determines key width.
    seed:
        Shared seed (public coins).
    num_hashes:
        IBLT hash-function count.
    backend:
        Cell-store backend for the IBLT (see :mod:`repro.config`); ``None``
        uses the process default.
    transcript:
        Optional existing transcript to append to (used when this protocol is
        a subroutine of a larger one).

    Returns
    -------
    ReconciliationResult
        ``recovered`` is Bob's reconstruction of Alice's set.
    """
    from repro.protocols.parties.setrecon import SetReconContext, ibf_parties
    from repro.protocols.session import run_session

    ctx = SetReconContext(universe_size, seed, num_hashes, backend)
    alice_party, bob_party = ibf_parties(alice, bob, difference_bound, ctx)
    return run_session(alice_party, bob_party, transcript=transcript)


def reconcile_unknown_d(
    alice: Set[int],
    bob: Set[int],
    universe_size: int,
    seed: int,
    *,
    estimator_factory: Callable[[int], SetDifferenceEstimator] | None = None,
    safety_factor: float = 2.0,
    num_hashes: int = 4,
    backend: str | None = None,
) -> ReconciliationResult:
    """Two-round IBLT set reconciliation without a difference bound (Cor 3.2).

    Bob sends a set-difference estimator seeded with his elements; Alice adds
    hers, queries the estimate, scales it by ``safety_factor`` and runs the
    known-``d`` protocol with that bound.
    """
    from repro.protocols.parties.setrecon import SetReconContext, ibf_parties
    from repro.protocols.session import run_session

    ctx = SetReconContext(
        universe_size,
        seed,
        num_hashes,
        backend,
        estimator_factory=estimator_factory,
        safety_factor=safety_factor,
    )
    alice_party, bob_party = ibf_parties(alice, bob, None, ctx)
    return run_session(alice_party, bob_party)
