"""IBLT-based set reconciliation (Corollaries 2.2 and 3.2).

Known-``d`` protocol (one round): Alice encodes her set into an ``O(d)`` cell
IBLT and sends it with a whole-set verification hash; Bob deletes his
elements, peels the remainder, and applies the recovered difference to his
own set.  Unknown-``d`` protocol (two rounds): Bob first sends a set
difference estimator, Alice queries it to obtain a bound, then the known-``d``
protocol runs.
"""

from __future__ import annotations

from typing import Callable, Iterable, Set

from repro.comm import ReconciliationResult, Transcript, WORD_BITS
from repro.comm.sizing import bits_for_value
from repro.core.setrecon.difference import apply_difference, max_element_bits
from repro.errors import ParameterError
from repro.estimator import SetDifferenceEstimator, L0Estimator
from repro.hashing import SeededHasher, derive_seed
from repro.iblt import IBLT, IBLTParameters


def _set_hash(seed: int, elements: Iterable[int]) -> int:
    """Whole-set verification hash (guards against undetected checksum failures)."""
    return SeededHasher(derive_seed(seed, "set-verification"), WORD_BITS).hash_iterable(
        elements
    )


def reconcile_known_d(
    alice: Set[int],
    bob: Set[int],
    difference_bound: int,
    universe_size: int,
    seed: int,
    *,
    num_hashes: int = 4,
    backend: str | None = None,
    transcript: Transcript | None = None,
) -> ReconciliationResult:
    """One-round IBLT set reconciliation with a known difference bound.

    Parameters
    ----------
    alice, bob:
        The two parties' sets of elements from ``[0, universe_size)``.
    difference_bound:
        Upper bound ``d`` on ``|alice xor bob|``.  If the true difference
        exceeds the bound, decoding fails (reported via ``success=False``).
    universe_size:
        Size ``u`` of the element universe; determines key width.
    seed:
        Shared seed (public coins).
    num_hashes:
        IBLT hash-function count.
    backend:
        Cell-store backend for the IBLT (see :mod:`repro.config`); ``None``
        uses the process default.
    transcript:
        Optional existing transcript to append to (used when this protocol is
        a subroutine of a larger one).

    Returns
    -------
    ReconciliationResult
        ``recovered`` is Bob's reconstruction of Alice's set.
    """
    if difference_bound < 0:
        raise ParameterError("difference_bound must be non-negative")
    if universe_size <= 0:
        raise ParameterError("universe_size must be positive")
    transcript = transcript if transcript is not None else Transcript()
    key_bits = max_element_bits(universe_size)
    params = IBLTParameters.for_difference(
        max(1, difference_bound), key_bits, derive_seed(seed, "setrecon"), num_hashes
    )

    # Alice: encode and send (whole set in one batch insert).
    alice_table = IBLT.from_items(params, alice, backend=backend)
    alice_hash = _set_hash(seed, alice)
    transcript.send(
        "alice",
        "set IBLT",
        alice_table.size_bits + bits_for_value(len(alice)) + WORD_BITS,
        payload=(alice_table, alice_hash, len(alice)),
    )

    # Bob: delete his elements (one batch) and decode the remainder.
    difference_table = alice_table.copy()
    difference_table.delete_batch(bob)
    decode = difference_table.try_decode()
    if not decode.success:
        return ReconciliationResult(
            False, None, transcript, details={"failure": "iblt-peel"}
        )
    recovered = apply_difference(bob, decode.positive, decode.negative)
    verified = _set_hash(seed, recovered) == alice_hash and len(recovered) == len(alice)
    return ReconciliationResult(
        verified,
        recovered if verified else None,
        transcript,
        details={
            "difference_found": decode.symmetric_difference_size(),
            "failure": None if verified else "verification-hash",
        },
    )


def reconcile_unknown_d(
    alice: Set[int],
    bob: Set[int],
    universe_size: int,
    seed: int,
    *,
    estimator_factory: Callable[[int], SetDifferenceEstimator] | None = None,
    safety_factor: float = 2.0,
    num_hashes: int = 4,
    backend: str | None = None,
) -> ReconciliationResult:
    """Two-round IBLT set reconciliation without a difference bound (Cor 3.2).

    Bob sends a set-difference estimator seeded with his elements; Alice adds
    hers, queries the estimate, scales it by ``safety_factor`` and runs the
    known-``d`` protocol with that bound.
    """
    if estimator_factory is None:
        estimator_factory = L0Estimator
    transcript = Transcript()
    estimator_seed = derive_seed(seed, "setrecon-estimator")

    bob_estimator = estimator_factory(estimator_seed)
    bob_estimator.update_all(bob, 1)
    transcript.send(
        "bob", "difference estimator", bob_estimator.size_bits, payload=bob_estimator
    )

    alice_estimator = estimator_factory(estimator_seed)
    alice_estimator.update_all(alice, 2)
    merged = bob_estimator.merge(alice_estimator)
    estimate = merged.query()
    bound = max(1, int(round(safety_factor * estimate)) + 1)

    result = reconcile_known_d(
        alice,
        bob,
        bound,
        universe_size,
        seed,
        num_hashes=num_hashes,
        backend=backend,
        transcript=transcript,
    )
    result.details["estimated_difference"] = estimate
    result.details["difference_bound_used"] = bound
    return result
