"""Single-set reconciliation protocols (Section 2 and Section 3.4).

One-way reconciliation: at the end of a protocol Bob holds Alice's set.

* :func:`~repro.core.setrecon.ibf.reconcile_known_d` -- Corollary 2.2: one
  round, ``O(d log u)`` bits, ``O(n)`` time, succeeds with probability
  ``1 - 1/poly(d)``.
* :func:`~repro.core.setrecon.ibf.reconcile_unknown_d` -- Corollary 3.2: two
  rounds, same communication, using a set-difference estimator first.
* :func:`~repro.core.setrecon.cpi.reconcile_cpi` -- Theorem 2.3: one round,
  ``O(d log u)`` bits, characteristic-polynomial interpolation, succeeds with
  probability 1 (when the difference bound holds).
* :mod:`repro.core.setrecon.multiset` -- Section 3.4: the same protocols for
  multisets via the ``(element, multiplicity)`` encoding.
"""

from repro.core.setrecon.ibf import reconcile_known_d, reconcile_unknown_d
from repro.core.setrecon.cpi import reconcile_cpi, CPIMessage
from repro.core.setrecon.multiset import (
    encode_multiset,
    decode_multiset,
    reconcile_multiset_known_d,
    multiset_symmetric_difference,
)
from repro.core.setrecon.difference import (
    symmetric_difference_size,
    apply_difference,
)

__all__ = [
    "reconcile_known_d",
    "reconcile_unknown_d",
    "reconcile_cpi",
    "CPIMessage",
    "encode_multiset",
    "decode_multiset",
    "reconcile_multiset_known_d",
    "multiset_symmetric_difference",
    "symmetric_difference_size",
    "apply_difference",
]
