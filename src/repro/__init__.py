"""repro -- Reconciling Graphs and Sets of Sets (Mitzenmacher & Morgan, PODS 2018).

A pure-Python reference implementation of the paper's data structures and
protocols:

* set reconciliation (IBLT and characteristic-polynomial protocols),
* set-difference estimators,
* set-of-sets reconciliation (naive, IBLT-of-IBLTs, cascading, multi-round),
* random graph reconciliation (degree ordering and degree neighborhood
  signature schemes), forest reconciliation, and the unbounded-computation
  reference protocols of Section 4,
* applications to binary relational databases and shingled document
  collections.

Quickstart::

    from repro import SetOfSets, reconcile_cascading

    alice = SetOfSets([{1, 2, 3}, {4, 5}, {6}])
    bob = SetOfSets([{1, 2, 3}, {4, 5, 7}, {6}])
    result = reconcile_cascading(alice, bob, difference_bound=2,
                                 universe_size=8, max_child_size=4, seed=42)
    assert result.success and result.recovered == alice
"""

from repro.comm import ReconciliationResult, Transcript
from repro.config import (
    available_cell_backends,
    available_field_kernels,
    cell_backend_names,
    default_cell_backend,
    default_field_kernel,
    field_kernel_names,
    set_default_cell_backend,
    set_default_field_kernel,
)
from repro.field import use_kernel
from repro.core.setrecon import (
    reconcile_known_d,
    reconcile_unknown_d,
    reconcile_cpi,
)
from repro.core.setsofsets import (
    SetOfSets,
    MultisetOfMultisets,
    reconcile_naive,
    reconcile_naive_unknown,
    reconcile_iblt_of_iblts,
    reconcile_iblt_of_iblts_unknown,
    reconcile_cascading,
    reconcile_cascading_unknown,
    reconcile_multiround,
    reconcile_multiround_unknown,
    reconcile_multisets_of_multisets,
    minimum_matching_difference,
)
from repro.estimator import L0Estimator, StrataEstimator, MedianEstimator
from repro.iblt import IBLT, IBLTParameters
from repro.graphs import (
    Graph,
    RootedForest,
    reconcile_labeled_graphs,
    reconcile_degree_order,
    reconcile_degree_neighborhood,
    reconcile_forest,
    reconcile_exhaustive,
)
from repro.db import BinaryTable, reconcile_tables
from repro.documents import DocumentCollection, reconcile_collections
from repro import protocols
from repro.protocols import (
    InMemoryTransport,
    ReconcileOptions,
    SerializingTransport,
    Session,
    SocketTransport,
    reconcile,
)

__version__ = "1.0.0"

__all__ = [
    "ReconciliationResult",
    "Transcript",
    "protocols",
    "reconcile",
    "ReconcileOptions",
    "Session",
    "InMemoryTransport",
    "SerializingTransport",
    "SocketTransport",
    "available_cell_backends",
    "cell_backend_names",
    "default_cell_backend",
    "set_default_cell_backend",
    "available_field_kernels",
    "field_kernel_names",
    "default_field_kernel",
    "set_default_field_kernel",
    "use_kernel",
    "reconcile_known_d",
    "reconcile_unknown_d",
    "reconcile_cpi",
    "SetOfSets",
    "MultisetOfMultisets",
    "reconcile_naive",
    "reconcile_naive_unknown",
    "reconcile_iblt_of_iblts",
    "reconcile_iblt_of_iblts_unknown",
    "reconcile_cascading",
    "reconcile_cascading_unknown",
    "reconcile_multiround",
    "reconcile_multiround_unknown",
    "reconcile_multisets_of_multisets",
    "minimum_matching_difference",
    "L0Estimator",
    "StrataEstimator",
    "MedianEstimator",
    "IBLT",
    "IBLTParameters",
    "Graph",
    "RootedForest",
    "reconcile_labeled_graphs",
    "reconcile_degree_order",
    "reconcile_degree_neighborhood",
    "reconcile_forest",
    "reconcile_exhaustive",
    "BinaryTable",
    "reconcile_tables",
    "DocumentCollection",
    "reconcile_collections",
    "__version__",
]
