"""The persistent, incrementally-maintained sketch store.

Linear sketches admit O(1) in-place updates per insert/delete, so a server
that keeps its sketches *live* answers a sync in O(d) work instead of
re-encoding O(n) elements per session.  This package owns that state:

* :class:`SketchStore` -- live IBLTs, difference estimators, running
  verification hashes, and maintained sizes per named dataset, with
  optional durability (atomic snapshots plus an append-only journal with
  replay-on-restart) and config-fingerprint cache invalidation;
* :class:`SketchConfig` -- the protocol identity a sketch is keyed on;
* :class:`StoreView` and the ``stored_ibf_*`` parties -- drop-in,
  byte-identical replacements for the from-scratch ``ibf`` parties that
  serve from the store;
* :class:`UpdateJournal` -- the write-ahead mutation log;
* :class:`AntiEntropyLoop` -- the background snapshot sweep with deferred
  retries.

See docs/store.md for the architecture, the durability model, and the
invalidation rules.
"""

from repro.store.antientropy import AntiEntropyLoop
from repro.store.config import SketchConfig
from repro.store.journal import UpdateJournal
from repro.store.parties import (
    StoreView,
    stored_ibf_alice_known,
    stored_ibf_alice_unknown,
    stored_ibf_bob_known,
    stored_ibf_bob_unknown,
    stored_ibf_party,
)
from repro.store.sketch import SNAPSHOT_VERSION, SketchStore

__all__ = [
    "AntiEntropyLoop",
    "SNAPSHOT_VERSION",
    "SketchConfig",
    "SketchStore",
    "StoreView",
    "UpdateJournal",
    "stored_ibf_alice_known",
    "stored_ibf_alice_unknown",
    "stored_ibf_bob_known",
    "stored_ibf_bob_unknown",
    "stored_ibf_party",
]
