"""Store-backed ``ibf`` parties: serve a sync without touching the dataset.

Each generator here mirrors its from-scratch twin in
:mod:`repro.protocols.parties.setrecon` message for message -- same labels,
same charged sizes, same codecs, same bytes.  That is not an accident to be
tested around but a consequence of linearity, and the tests pin it:

* the live table equals ``IBLT.from_items`` over the mutated set
  bit-for-bit (updates commute), so alice's ``"set IBLT"`` payload is
  byte-identical;
* ``alice_table.subtract(stored_bob_table)`` equals the scratch path's
  ``alice_table.copy(); delete_batch(bob)`` -- both compute
  ``encode(A) - encode(B)`` cell-wise;
* the estimator merge is a counter-wise sum, so a live estimator merged
  with the peer's yields the same estimate (hence the same derived bound
  and the same self-describing header);
* the whole-set verification hash is an XOR fold, so
  ``hash(recovered) == stored_hash ^ xor(h(x) for x in positive) ^
  xor(h(x) for x in negative)`` whenever the peeled difference is honest
  (and with overwhelming probability the verification verdict matches the
  scratch party's in every case).

The bob-side party verifies without materializing the reconciled set (the
point of the store is to *not* iterate the dataset); pass
``materialize=True`` to recover it, e.g. in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.core.setrecon.difference import apply_difference
from repro.estimator import SetDifferenceEstimator
from repro.errors import ParameterError
from repro.iblt import IBLT, IBLTParameters
from repro.protocols.party import (
    END_OF_SESSION,
    PartyGenerator,
    PartyOutcome,
    Receive,
    Send,
    aborted_outcome,
)
from repro.protocols.parties.setrecon import (
    IBFMessageCodec,
    SetReconContext,
    ibf_message_bits,
    set_verification_hash,
)
from repro.store.config import SketchConfig
from repro.store.sketch import SketchStore


@dataclass
class StoreView:
    """One dataset's store handle bound to one protocol config.

    The thin seam between the parties and the store: parties ask the view
    for sketches and derived facts; every call is O(d) or O(1) after the
    first touch of a given ``(config, geometry)``.
    """

    store: SketchStore
    key: str
    config: SketchConfig
    dataset: Any
    materialize: bool = False

    def context(self) -> SetReconContext:
        return self.config.context()

    def table(self, difference_bound: int) -> IBLT:
        return self.store.table_for(
            self.key, self.config, difference_bound, self.dataset
        )

    def table_for_params(self, params: IBLTParameters) -> IBLT:
        return self.store.table_for_params(self.key, self.config, params, self.dataset)

    def estimator(self, side: int) -> SetDifferenceEstimator:
        return self.store.estimator_for(self.key, self.config, side, self.dataset)

    @property
    def set_hash(self) -> int:
        return self.store.verification_hash(self.key, self.config, self.dataset)

    @property
    def size(self) -> int:
        return self.store.size_of(self.key, self.dataset)

    def hash_with(self, added: Iterable[int], removed: Iterable[int]) -> int:
        """The stored hash with a recovered difference toggled in (O(d))."""
        return (
            self.set_hash
            ^ set_verification_hash(self.config.seed, added)
            ^ set_verification_hash(self.config.seed, removed)
        )


def stored_ibf_alice_known(
    view: StoreView,
    difference_bound: int,
    ctx: SetReconContext,
    *,
    self_describing: bool = False,
) -> PartyGenerator:
    """Alice's one-round side served from the live table."""
    if difference_bound < 0:
        raise ParameterError("difference_bound must be non-negative")
    if ctx.universe_size <= 0:
        raise ParameterError("universe_size must be positive")
    # copy(): the receiver owns the payload object on in-memory transports,
    # and the live table must never leave the store's control.
    table = view.table(difference_bound).copy()
    yield Send(
        "set IBLT",
        ibf_message_bits(ctx, difference_bound, view.size),
        payload=(table, view.set_hash, view.size),
        codec=IBFMessageCodec(ctx, difference_bound, self_describing),
    )
    return PartyOutcome(True, details={"served_from_store": True})


def stored_ibf_bob_known(
    view: StoreView,
    difference_bound: int | None,
    ctx: SetReconContext,
    *,
    self_describing: bool = False,
) -> PartyGenerator:
    """Bob's side: subtract the live table, peel, verify incrementally."""
    payload = yield Receive(IBFMessageCodec(ctx, difference_bound, self_describing))
    if payload is END_OF_SESSION:
        return aborted_outcome()
    alice_table, alice_hash, alice_size = payload
    bob_table = view.table_for_params(alice_table.params)
    difference_table = alice_table.subtract(bob_table)
    decode = difference_table.try_decode()
    if not decode.success:
        return PartyOutcome(
            False, details={"failure": "iblt-peel", "served_from_store": True}
        )
    recovered_hash = view.hash_with(decode.positive, decode.negative)
    recovered_size = view.size + len(decode.positive) - len(decode.negative)
    verified = recovered_hash == alice_hash and recovered_size == alice_size
    recovered = None
    if verified and view.materialize:
        recovered = apply_difference(
            set(view.dataset), decode.positive, decode.negative
        )
    return PartyOutcome(
        verified,
        recovered,
        details={
            "difference_found": decode.symmetric_difference_size(),
            "failure": None if verified else "verification-hash",
            "served_from_store": True,
        },
    )


def stored_ibf_alice_unknown(view: StoreView, ctx: SetReconContext) -> PartyGenerator:
    """Alice's two-round side: merge the live estimator, size the table."""
    bob_estimator = yield Receive(ctx.estimator_codec())
    if bob_estimator is END_OF_SESSION:
        return aborted_outcome()
    estimate = bob_estimator.merge(view.estimator(side=2)).query()
    bound = max(1, int(round(ctx.safety_factor * estimate)) + 1)
    yield from stored_ibf_alice_known(view, bound, ctx, self_describing=True)
    return PartyOutcome(
        True,
        details={
            "estimated_difference": estimate,
            "difference_bound_used": bound,
            "served_from_store": True,
        },
    )


def stored_ibf_bob_unknown(view: StoreView, ctx: SetReconContext) -> PartyGenerator:
    """Bob's side: send the live estimator, then the known-``d`` exchange."""
    estimator = view.estimator(side=1)
    yield Send(
        "difference estimator",
        estimator.size_bits,
        payload=estimator,
        codec=ctx.estimator_codec(),
    )
    outcome = yield from stored_ibf_bob_known(view, None, ctx, self_describing=True)
    return outcome


def stored_ibf_party(
    role: str,
    view: StoreView,
    difference_bound: int | None,
    ctx: SetReconContext | None = None,
) -> PartyGenerator:
    """The store-backed party for one server role (known or unknown ``d``)."""
    if role not in ("alice", "bob"):
        raise ParameterError(f"role must be 'alice' or 'bob', got {role!r}")
    if ctx is None:
        ctx = view.context()
    if difference_bound is None:
        if role == "alice":
            return stored_ibf_alice_unknown(view, ctx)
        return stored_ibf_bob_unknown(view, ctx)
    if role == "alice":
        return stored_ibf_alice_known(view, difference_bound, ctx)
    return stored_ibf_bob_known(view, difference_bound, ctx)
