"""The sketch store: one live, incrementally-maintained sketch per dataset.

The IBLT and the set-difference estimators are *linear* sketches: inserting
or deleting a key touches ``num_hashes`` cells (or ``O(log n)`` counters),
and updates commute.  A table kept live across mutations is therefore
bit-identical to one rebuilt from scratch over the mutated set -- which is
what lets a server answer a sync in O(d) work instead of re-encoding O(n)
elements per session.  :class:`SketchStore` owns that live state:

* per dataset, a family of IBLTs keyed on ``(config fingerprint,
  num_cells)`` -- the same physical table serves every difference bound
  that sizes to the same cell count;
* per ``(config, side)``, a live difference estimator for the unknown-``d``
  flow (side 1 for serving as bob, side 2 for serving as alice);
* per config seed, the running whole-set verification hash.  The hash is an
  XOR fold over per-element hashes
  (:func:`~repro.protocols.parties.setrecon.set_verification_hash`), so a
  mutation toggles it in O(d) too;
* the dataset's size, maintained arithmetically.

Durability (optional, enabled by passing a ``root`` directory) is a
snapshot per dataset (atomic temp-file + ``os.replace``; tables persist via
:meth:`~repro.iblt.table.IBLT.serialize`) plus an append-only
:class:`~repro.store.journal.UpdateJournal`.  Restart loads the snapshot
and replays the journal suffix; a snapshot or table whose recorded
parameters disagree with what its recorded config would derive today is
discarded and counted as an invalidation (see
:meth:`~repro.store.config.SketchConfig.admits_params`).

Metrics are duck-typed: any object with the ``record_store_*`` /
``record_journal_replay`` / ``record_snapshot*`` methods of
:class:`~repro.service.metrics.ServiceMetrics` can ride along; ``None``
disables recording.  The store never imports the service layer.
"""

from __future__ import annotations

import json
import os
import re
import threading
from pathlib import Path
from typing import Any, Iterable

from repro.comm.bits import BitReader, BitWriter
from repro.errors import ParameterError, ReproError, StoreError
from repro.estimator import SetDifferenceEstimator
from repro.iblt import IBLT, IBLTParameters
from repro.store.config import SketchConfig
from repro.store.journal import UpdateJournal

#: Snapshot schema version; bumped on incompatible changes (older snapshots
#: are then discarded as invalidations, never misread).
SNAPSHOT_VERSION = 1


def _safe_filename(key: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", key) or "_"


def _verification_hash(seed: int, elements: Iterable[int]) -> int:
    from repro.protocols.parties.setrecon import set_verification_hash

    return set_verification_hash(seed, elements)


class _DatasetEntry:
    """The live sketches of one stored dataset."""

    def __init__(self, key: str, size: int) -> None:
        self.key = key
        self.size = size
        self.seq = 0  # sequence number of the last applied mutation batch
        self.snapshot_seq = -1  # seq captured by the on-disk snapshot
        self.tables: dict[tuple[str, int], tuple[SketchConfig, IBLT]] = {}
        self.estimators: dict[
            tuple[str, int], tuple[SketchConfig, SetDifferenceEstimator]
        ] = {}
        self.hashes: dict[int, int] = {}  # config seed -> running XOR hash
        self.journal: UpdateJournal | None = None


class SketchStore:
    """Live sketches for any number of named datasets.

    Parameters
    ----------
    root:
        Directory for snapshots and journals; ``None`` keeps the store
        purely in memory (no durability, no anti-entropy).
    metrics:
        Optional counter sink (duck-typed to
        :class:`~repro.service.metrics.ServiceMetrics`).
    fsync:
        Force journal appends and snapshots to stable storage.

    The tables and estimators handed out by :meth:`table_for` /
    :meth:`estimator_for` are the *live* objects -- callers must treat them
    as immutable (``copy()`` before mutating, as the store-backed parties
    do) and must route every dataset change through :meth:`apply`.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        metrics: Any = None,
        fsync: bool = False,
    ) -> None:
        self.root = Path(root) if root is not None else None
        self.metrics = metrics
        self.fsync = fsync
        self._entries: dict[str, _DatasetEntry] = {}
        self._lock = threading.RLock()
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)

    # -- plumbing -------------------------------------------------------------------

    @property
    def durable(self) -> bool:
        return self.root is not None

    def _metric(self, name: str, *args: Any) -> None:
        if self.metrics is not None:
            getattr(self.metrics, name)(*args)

    def _snapshot_path(self, key: str) -> Path:
        assert self.root is not None
        return self.root / f"{_safe_filename(key)}.snapshot.json"

    def _journal_path(self, key: str) -> Path:
        assert self.root is not None
        return self.root / f"{_safe_filename(key)}.journal.jsonl"

    def loaded_datasets(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    # -- entry lifecycle ------------------------------------------------------------

    def _entry(self, key: str, dataset: Any) -> _DatasetEntry:
        entry = self._entries.get(key)
        if entry is not None:
            return entry
        journal = (
            UpdateJournal(self._journal_path(key), fsync=self.fsync)
            if self.durable
            else None
        )
        if self.durable:
            entry = self._load_entry(key, dataset, journal)
        if entry is None:
            if dataset is None:
                raise StoreError(
                    f"dataset {key!r} is not loaded and no data was supplied"
                )
            entry = _DatasetEntry(key, len(dataset))
            if journal is not None:
                # A leftover journal without a (valid) snapshot describes
                # mutations the supplied dataset already reflects; continue
                # its sequence numbering instead of colliding with it.
                try:
                    entry.seq = journal.last_seq()
                except StoreError:
                    self._metric("record_store_invalidation")
                    journal.unlink()
        entry.journal = journal
        self._entries[key] = entry
        return entry

    def _load_entry(
        self, key: str, dataset: Any, journal: UpdateJournal
    ) -> _DatasetEntry | None:
        path = self._snapshot_path(key)
        if not path.exists():
            return None
        try:
            body = json.loads(path.read_text(encoding="utf-8"))
            if body.get("version") != SNAPSHOT_VERSION:
                raise ValueError(f"unsupported snapshot version {body.get('version')!r}")
            entry = self._entry_from_snapshot(key, body)
        except (OSError, ValueError, KeyError, TypeError, ReproError):
            self._metric("record_store_invalidation")
            return None
        try:
            replayed = journal.replay(entry.seq)
        except StoreError:
            # Interior journal corruption: the snapshot is sound but the
            # mutations past it cannot be trusted to line up with the
            # dataset.  Rebuild from supplied data instead of serving a
            # silently stale sketch.
            self._metric("record_store_invalidation")
            journal.unlink()
            try:
                path.unlink()
            except FileNotFoundError:
                pass
            return None
        for seq, inserted, deleted in replayed:
            self._apply_to_entry(entry, inserted, deleted)
            entry.seq = seq
        if replayed:
            self._metric("record_journal_replay", len(replayed))
        if dataset is not None and entry.size != len(dataset):
            # The dataset changed without going through apply(): every
            # cached sketch is suspect.  Drop the persisted state too.
            self._metric("record_store_invalidation")
            journal.unlink()
            try:
                path.unlink()
            except FileNotFoundError:
                pass
            return None
        return entry

    def _entry_from_snapshot(self, key: str, body: dict[str, Any]) -> _DatasetEntry:
        entry = _DatasetEntry(key, int(body["size"]))
        entry.seq = entry.snapshot_seq = int(body["seq"])
        for item in body.get("tables", []):
            config = SketchConfig.from_wire(item["config"])
            params = IBLTParameters(
                **{name: int(value) for name, value in item["params"].items()}
            )
            if not config.admits_params(params):
                self._metric("record_store_invalidation")
                continue
            table = IBLT.deserialize(
                params, int(item["cells"], 16), backend=config.backend
            )
            entry.tables[(config.fingerprint, params.num_cells)] = (config, table)
        for item in body.get("estimators", []):
            config = SketchConfig.from_wire(item["config"])
            side = int(item["side"])
            estimator = config.context().make_estimator()
            estimator.read_wire(BitReader(bytes.fromhex(item["state"])))
            entry.estimators[(config.fingerprint, side)] = (config, estimator)
        for seed, value in body.get("hashes", {}).items():
            entry.hashes[int(seed)] = int(value)
        return entry

    # -- the incremental core -------------------------------------------------------

    @staticmethod
    def _apply_to_entry(
        entry: _DatasetEntry, inserted: Iterable[int], deleted: Iterable[int]
    ) -> None:
        inserted = list(inserted)
        deleted = list(deleted)
        for _config, table in entry.tables.values():
            table.insert_batch(inserted)
            table.delete_batch(deleted)
        for (_fingerprint, side), (_config, estimator) in entry.estimators.items():
            estimator.update_all(inserted, side)
            # Deleting x from side s cancels its earlier +-1 contribution:
            # the counters are mod-4 (or cell counts), so adding x to the
            # *other* side is exactly the inverse update.
            estimator.update_all(deleted, 2 if side == 1 else 1)
        for seed in entry.hashes:
            entry.hashes[seed] ^= _verification_hash(seed, inserted) ^ _verification_hash(
                seed, deleted
            )
        entry.size += len(inserted) - len(deleted)

    def apply(
        self,
        key: str,
        inserted: Iterable[int],
        deleted: Iterable[int],
        dataset: Any = None,
    ) -> int:
        """Record one *effective* mutation batch against every live sketch.

        ``inserted`` must be disjoint from the dataset before the batch and
        ``deleted`` a subset of it (the service layer filters no-ops before
        calling); the dataset itself is the caller's to update.  Returns the
        assigned sequence number.  The batch is journaled (write-ahead) when
        the store is durable; if a sketch update then fails -- e.g. a key
        outside a cached config's universe -- the entry is invalidated
        wholesale (memory and disk) so no half-applied state survives, and
        :class:`~repro.errors.StoreError` is raised.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = self._entry(key, dataset)
            inserted = tuple(inserted)
            deleted = tuple(deleted)
            seq = entry.seq + 1
            if entry.journal is not None:
                entry.journal.append(seq, inserted, deleted)
            try:
                self._apply_to_entry(entry, inserted, deleted)
            except (ReproError, ArithmeticError, LookupError, TypeError, ValueError) as exc:
                # What a bad batch can actually raise: parameter/width checks
                # (ReproError), overflow, and malformed keys.
                self.invalidate(key)
                raise StoreError(
                    f"mutation batch poisoned the live sketches for {key!r} "
                    f"(entry invalidated): {exc}"
                ) from exc
            except BaseException:
                # Even an unexpected failure (including KeyboardInterrupt
                # mid-batch) must not leave half-applied sketches behind.
                self.invalidate(key)
                raise
            entry.seq = seq
            return seq

    # -- sketch access --------------------------------------------------------------

    def table_for(
        self, key: str, config: SketchConfig, difference_bound: int, dataset: Any
    ) -> IBLT:
        """The live IBLT for ``(dataset, config)`` sized for ``difference_bound``."""
        params = config.context().table_params(difference_bound)
        return self.table_for_params(key, config, params, dataset)

    def table_for_params(
        self, key: str, config: SketchConfig, params: IBLTParameters, dataset: Any
    ) -> IBLT:
        """Like :meth:`table_for` but keyed by explicit table parameters.

        The unknown-``d`` bob side learns the table geometry from the
        self-describing bound header rather than from shared knowledge, so
        it looks up by the received parameters; they must still be ones
        this config could have derived (:meth:`SketchConfig.admits_params`).
        """
        if not config.admits_params(params):
            raise StoreError(
                "table parameters disagree with the store's protocol config "
                f"for dataset {key!r}"
            )
        with self._lock:
            entry = self._entry(key, dataset)
            table_key = (config.fingerprint, params.num_cells)
            cached = entry.tables.get(table_key)
            if cached is not None:
                self._metric("record_store_hit")
                return cached[1]
            self._metric("record_store_miss")
            if dataset is None:
                raise StoreError(
                    f"no cached table for dataset {key!r} and no data to encode"
                )
            table = IBLT.from_items(params, dataset, backend=config.backend)
            entry.tables[table_key] = (config, table)
            return table

    def estimator_for(
        self, key: str, config: SketchConfig, side: int, dataset: Any
    ) -> SetDifferenceEstimator:
        """The live difference estimator for ``(dataset, config, side)``.

        ``side=1`` serves the bob role (his elements are ``S1``), ``side=2``
        the alice role, matching the scratch parties' update sides so that
        merged estimates -- counter-wise sums -- are identical.
        """
        if side not in (1, 2):
            raise ParameterError(f"estimator side must be 1 or 2, got {side}")
        with self._lock:
            entry = self._entry(key, dataset)
            estimator_key = (config.fingerprint, side)
            cached = entry.estimators.get(estimator_key)
            if cached is not None:
                self._metric("record_store_hit")
                return cached[1]
            self._metric("record_store_miss")
            if dataset is None:
                raise StoreError(
                    f"no cached estimator for dataset {key!r} and no data to encode"
                )
            estimator = config.context().make_estimator()
            estimator.update_all(dataset, side)
            entry.estimators[estimator_key] = (config, estimator)
            return estimator

    def verification_hash(self, key: str, config: SketchConfig, dataset: Any) -> int:
        """The running whole-set verification hash for ``config.seed``."""
        with self._lock:
            entry = self._entry(key, dataset)
            seed = config.seed
            if seed not in entry.hashes:
                if dataset is None:
                    raise StoreError(
                        f"no cached hash for dataset {key!r} and no data to fold"
                    )
                entry.hashes[seed] = _verification_hash(seed, dataset)
            return entry.hashes[seed]

    def size_of(self, key: str, dataset: Any = None) -> int:
        """The maintained dataset size."""
        with self._lock:
            return self._entry(key, dataset).size

    # -- durability -----------------------------------------------------------------

    def snapshot(self, key: str) -> Path:
        """Atomically persist one dataset's sketches; compacts its journal."""
        if self.root is None:
            raise StoreError("snapshot requires a durable store (pass a root directory)")
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                raise StoreError(f"dataset {key!r} is not loaded")
            body: dict[str, Any] = {
                "version": SNAPSHOT_VERSION,
                "dataset": key,
                "seq": entry.seq,
                "size": entry.size,
                "hashes": {str(seed): value for seed, value in entry.hashes.items()},
                "tables": [
                    {
                        "config": config.to_wire(),
                        "params": {
                            "num_cells": table.params.num_cells,
                            "key_bits": table.params.key_bits,
                            "seed": table.params.seed,
                            "num_hashes": table.params.num_hashes,
                            "checksum_bits": table.params.checksum_bits,
                            "count_bits": table.params.count_bits,
                        },
                        "cells": format(table.serialize(), "x"),
                    }
                    for config, table in entry.tables.values()
                ],
                "estimators": [
                    {
                        "config": config.to_wire(),
                        "side": side,
                        "state": self._estimator_state(estimator),
                    }
                    for (_fingerprint, side), (config, estimator) in entry.estimators.items()
                ],
            }
            path = self._snapshot_path(key)
            temp = path.with_suffix(path.suffix + ".tmp")
            with open(temp, "w", encoding="utf-8") as handle:
                json.dump(body, handle)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            os.replace(temp, path)
            entry.snapshot_seq = entry.seq
            if entry.journal is not None:
                entry.journal.compact(entry.seq)
            self._metric("record_snapshot")
            return path

    @staticmethod
    def _estimator_state(estimator: SetDifferenceEstimator) -> str:
        writer = BitWriter()
        estimator.write_wire(writer)
        return writer.getvalue().hex()

    def is_dirty(self, key: str) -> bool:
        """Whether the dataset has mutations (or sketches) not yet snapshotted."""
        if not self.durable:
            return False
        with self._lock:
            entry = self._entries.get(key)
            return entry is not None and entry.seq > entry.snapshot_seq

    def dirty_datasets(self) -> list[str]:
        """Loaded datasets whose on-disk state lags the live sketches."""
        if not self.durable:
            return []
        with self._lock:
            return sorted(
                key
                for key, entry in self._entries.items()
                if entry.seq > entry.snapshot_seq
            )

    def journal_lag(self, key: str) -> int:
        """Mutation batches applied since the last snapshot (staleness gauge)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return 0
            return max(0, entry.seq - max(entry.snapshot_seq, 0))

    def flush(self) -> int:
        """Snapshot every dirty dataset; returns how many were written."""
        written = 0
        for key in self.dirty_datasets():
            self.snapshot(key)
            written += 1
        return written

    # -- invalidation ----------------------------------------------------------------

    def invalidate(self, key: str) -> None:
        """Drop one dataset's sketches, snapshot, and journal."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is not None and entry.journal is not None:
                entry.journal.unlink()
            elif self.durable:
                UpdateJournal(self._journal_path(key)).unlink()
            if self.durable:
                try:
                    self._snapshot_path(key).unlink()
                except FileNotFoundError:
                    pass
            self._metric("record_store_invalidation")

    def close(self) -> None:
        """Release journal file handles (sketches stay in memory)."""
        with self._lock:
            for entry in self._entries.values():
                if entry.journal is not None:
                    entry.journal.close()
