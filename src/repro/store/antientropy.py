"""The anti-entropy loop: re-sync dirty datasets to disk in the background.

Mutations are journaled synchronously (write-ahead, O(d) per batch); full
snapshots are O(table size) and amortize badly per mutation, so they run
here instead: every ``interval`` seconds the loop snapshots each dataset
whose live sketches lag the on-disk state.  A dataset whose snapshot fails
(disk full, permissions) is *deferred* with exponential backoff -- it stays
dirty and journal appends keep protecting it, so nothing is lost while the
condition persists -- and retried once its backoff expires.

The loop is split into a pure, clock-injected :meth:`AntiEntropyLoop.run_cycle`
(unit-testable without an event loop) and the thin asyncio :meth:`run`
driver the server spawns.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.errors import ReproError
from repro.store.sketch import SketchStore


class AntiEntropyLoop:
    """Periodic snapshot sweep over a durable :class:`SketchStore`.

    Parameters
    ----------
    store:
        The durable store to sweep (a root-less store has nothing to sync).
    interval:
        Seconds between sweeps; also the base of the failure backoff.
    metrics:
        Optional counter sink (duck-typed to
        :class:`~repro.service.metrics.ServiceMetrics`); defaults to the
        store's.
    max_backoff:
        Cap on the per-dataset retry delay.
    """

    def __init__(
        self,
        store: SketchStore,
        *,
        interval: float = 5.0,
        metrics: Any = None,
        max_backoff: float = 60.0,
    ) -> None:
        self.store = store
        self.interval = interval
        self.metrics = metrics if metrics is not None else store.metrics
        self.max_backoff = max_backoff
        self._failures: dict[str, int] = {}
        self._not_before: dict[str, float] = {}

    def _metric(self, name: str, *args: Any) -> None:
        if self.metrics is not None:
            getattr(self.metrics, name)(*args)

    def run_cycle(self, now: float) -> int:
        """One sweep at time ``now``; returns how many snapshots were written."""
        dirty = self.store.dirty_datasets()
        lag = max((self.store.journal_lag(key) for key in dirty), default=0)
        self._metric("record_store_staleness", len(dirty), lag)
        written = 0
        for key in dirty:
            if self._not_before.get(key, 0.0) > now:
                continue  # deferred: its backoff has not expired yet
            try:
                self.store.snapshot(key)
            except (OSError, ReproError):
                failures = self._failures.get(key, 0) + 1
                self._failures[key] = failures
                self._not_before[key] = now + min(
                    self.interval * (2**failures), self.max_backoff
                )
                self._metric("record_snapshot_failure")
            else:
                self._failures.pop(key, None)
                self._not_before.pop(key, None)
                written += 1
        self._metric("record_anti_entropy_cycle")
        return written

    async def run(self) -> None:
        """The asyncio driver: sweep forever until cancelled."""
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.interval)
            self.run_cycle(loop.time())
