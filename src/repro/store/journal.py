"""The append-only update journal backing :class:`~repro.store.SketchStore`.

One journal file per stored dataset, one JSON line per applied mutation
batch::

    {"seq": 7, "insert": [12, 99], "delete": [5]}

Sequence numbers are assigned by the store (strictly increasing per
dataset); a snapshot records the sequence number it captured, and restart
replays only the entries past it.  The file format is deliberately boring --
human-readable, greppable, and recoverable with a text editor.

Crash model: appends are flushed to the OS per entry (``fsync=True``
additionally forces them to disk), so a process death leaves at most one
*torn* trailing line.  :meth:`UpdateJournal.entries` tolerates exactly that
-- a final line that does not parse is dropped -- while a malformed entry in
the interior raises :class:`~repro.errors.StoreError`, because data after it
cannot be trusted to line up with the sequence numbers.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Iterable

from repro.errors import StoreError

#: One journal entry: ``(seq, inserted keys, deleted keys)``.
JournalEntry = tuple[int, tuple[int, ...], tuple[int, ...]]


def _parse_line(line: str) -> JournalEntry:
    body = json.loads(line)
    seq = body["seq"]
    inserted = body.get("insert", [])
    deleted = body.get("delete", [])
    if not isinstance(seq, int) or not isinstance(inserted, list) or not isinstance(deleted, list):
        raise ValueError("journal entry fields have the wrong types")
    return (
        seq,
        tuple(int(key) for key in inserted),
        tuple(int(key) for key in deleted),
    )


class UpdateJournal:
    """Append-only mutation log for one stored dataset.

    Parameters
    ----------
    path:
        The journal file (created on first append).
    fsync:
        Force every append to stable storage.  Off by default: the store's
        durability bar is "survive process death", which the per-entry
        flush already provides; power-loss durability costs an fsync per
        mutation batch.
    """

    def __init__(self, path: Path, *, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._handle: IO[str] | None = None

    # -- writing --------------------------------------------------------------------

    def _repair_torn_tail(self) -> None:
        """Truncate a partial trailing line before the first append.

        A crash mid-append leaves the file without a final newline; opening
        in append mode would then concatenate the next entry onto the torn
        fragment, turning a tolerated tail into fatal interior corruption.
        """
        if not self.path.exists():
            return
        data = self.path.read_bytes()
        if not data or data.endswith(b"\n"):
            return
        with open(self.path, "r+b") as handle:
            handle.truncate(data.rfind(b"\n") + 1)

    def append(self, seq: int, inserted: Iterable[int], deleted: Iterable[int]) -> None:
        """Durably record one applied mutation batch."""
        line = json.dumps(
            {"seq": seq, "insert": list(inserted), "delete": list(deleted)},
            separators=(",", ":"),
        )
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._repair_torn_tail()
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(line + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    # -- reading --------------------------------------------------------------------

    def entries(self) -> list[JournalEntry]:
        """Every parseable entry, tolerating a torn trailing line.

        A line that fails to parse is dropped when it is the last one (the
        torn write of a crash mid-append) and raises :class:`StoreError`
        anywhere else.
        """
        if not self.path.exists():
            return []
        lines = self.path.read_text(encoding="utf-8").splitlines()
        parsed: list[JournalEntry] = []
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                parsed.append(_parse_line(line))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                if index == len(lines) - 1:
                    break  # torn tail: the crash interrupted this append
                raise StoreError(
                    f"corrupt journal entry at {self.path}:{index + 1}: {exc}"
                ) from exc
        return parsed

    def replay(self, after_seq: int) -> list[JournalEntry]:
        """Entries with ``seq > after_seq``, in order (the restart path)."""
        return [entry for entry in self.entries() if entry[0] > after_seq]

    def last_seq(self) -> int:
        """Highest recorded sequence number (0 for a missing/empty journal)."""
        entries = self.entries()
        return entries[-1][0] if entries else 0

    # -- maintenance ----------------------------------------------------------------

    def compact(self, upto_seq: int) -> None:
        """Drop entries already captured by a snapshot (``seq <= upto_seq``).

        Rewrites atomically (temp file + ``os.replace``) so a crash during
        compaction leaves either the old or the new journal, never a mix.
        """
        keep = [entry for entry in self.entries() if entry[0] > upto_seq]
        self.close()
        if not self.path.exists() and not keep:
            return
        temp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(temp, "w", encoding="utf-8") as handle:
            for seq, inserted, deleted in keep:
                handle.write(
                    json.dumps(
                        {"seq": seq, "insert": list(inserted), "delete": list(deleted)},
                        separators=(",", ":"),
                    )
                    + "\n"
                )
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(temp, self.path)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def unlink(self) -> None:
        """Remove the journal file (cache invalidation)."""
        self.close()
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
