"""The protocol configuration a stored sketch is keyed on.

A live sketch is only reusable by a session that would have built the exact
same sketch from scratch: same universe (key width), same seed (bucket and
checksum hash functions), same hash count, same backend choice.  Those
fields -- the wire-serializable subset of
:class:`~repro.protocols.options.ReconcileOptions` the ``ibf`` builder
reads -- make up :class:`SketchConfig`; its :attr:`~SketchConfig.fingerprint`
is the cache key, and a persisted sketch whose recorded parameters no longer
match the parameters recomputed from its recorded config is discarded as an
invalidation (the library's sizing rules or hash derivations changed
underneath it).

The field kernel is deliberately absent: GF(p) arithmetic never touches an
IBLT or estimator sketch, so a kernel change cannot invalidate one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.core.setrecon.difference import max_element_bits
from repro.hashing import derive_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.iblt import IBLTParameters
    from repro.protocols.options import ReconcileOptions
    from repro.protocols.parties.setrecon import SetReconContext


@dataclass(frozen=True)
class SketchConfig:
    """The (hashable, persistable) identity of one sketch family.

    Mirrors exactly what :class:`~repro.protocols.registry.IBFProtocol`
    feeds into :class:`~repro.protocols.parties.setrecon.SetReconContext`,
    minus the unserializable ``estimator_factory`` (sessions carrying one
    bypass the store).
    """

    universe_size: int
    seed: int = 0
    num_hashes: int = 4
    backend: str | None = None
    safety_factor: float = 2.0

    @classmethod
    def from_options(cls, options: "ReconcileOptions") -> "SketchConfig":
        return cls(
            universe_size=options.universe_size,
            seed=options.seed,
            num_hashes=options.num_hashes,
            backend=options.backend,
            safety_factor=options.safety_factor,
        )

    def context(self) -> "SetReconContext":
        """The shared protocol context a session with this config derives."""
        from repro.protocols.parties.setrecon import SetReconContext

        return SetReconContext(
            self.universe_size,
            self.seed,
            self.num_hashes,
            self.backend,
            safety_factor=self.safety_factor,
        )

    @property
    def fingerprint(self) -> str:
        """The cache key: every field that shapes sketch *contents*.

        ``safety_factor`` only scales the derived difference bound -- two
        configs differing only there share every sketch -- so it is not
        part of the fingerprint.
        """
        return (
            f"u{self.universe_size}/s{self.seed}/k{self.num_hashes}"
            f"/b{self.backend or 'default'}"
        )

    # -- derived identities the invalidation rules check against ---------------------

    @property
    def table_seed(self) -> int:
        """Seed every IBLT of this config is built with."""
        return derive_seed(self.seed, "setrecon")

    @property
    def key_bits(self) -> int:
        """Key width every IBLT of this config is built with."""
        return max_element_bits(self.universe_size)

    def expected_params(self, num_cells: int) -> "IBLTParameters":
        """The table parameters this config derives for a given cell count."""
        from repro.iblt import IBLTParameters

        return IBLTParameters(
            num_cells=num_cells,
            key_bits=self.key_bits,
            seed=self.table_seed,
            num_hashes=self.num_hashes,
        )

    def admits_params(self, params: "IBLTParameters") -> bool:
        """Whether table parameters could have come from this config.

        This is the invalidation rule for persisted (and received) tables:
        a table whose seed, key width, hash count, or cell layout disagrees
        with what the config derives today cannot be combined with this
        config's live sketches.
        """
        return params == self.expected_params(params.num_cells)

    # -- persistence -----------------------------------------------------------------

    def to_wire(self) -> dict[str, Any]:
        return {
            "universe_size": self.universe_size,
            "seed": self.seed,
            "num_hashes": self.num_hashes,
            "backend": self.backend,
            "safety_factor": self.safety_factor,
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "SketchConfig":
        return cls(
            universe_size=int(wire["universe_size"]),
            seed=int(wire["seed"]),
            num_hashes=int(wire["num_hashes"]),
            backend=wire.get("backend"),
            safety_factor=float(wire.get("safety_factor", 2.0)),
        )
