"""Table-size heuristics for IBLT peeling success.

Theorem 2.1 states that an IBLT with ``m`` cells recovers up to ``c * m`` keys
with probability ``1 - O(1/poly(m))``.  The constant ``c`` is the 2-core
threshold of random k-uniform hypergraphs:

=====  =========================
k      peeling threshold c_k
=====  =========================
3      0.8184
4      0.7723
5      0.7020
=====  =========================

(so a table needs roughly ``d / c_k`` cells to decode ``d`` differences
asymptotically).  Small tables need proportionally more slack because the
concentration arguments only bite for large ``m``; the widely used practical
rule (e.g. Eppstein et al., "What's the Difference?") is a multiplier of
about 1.4-2x plus a small additive constant.  :func:`cells_for_difference`
encodes that rule and is used by every protocol in the library, so changing
the constants here uniformly re-tunes the whole system.
"""

from __future__ import annotations

import math

from repro.errors import ParameterError

#: Asymptotic peeling (2-core) thresholds per number of hash functions.
PEELING_THRESHOLDS: dict[int, float] = {2: 0.5, 3: 0.8184, 4: 0.7723, 5: 0.7020}

#: Practical safety multipliers applied on top of ``1 / c_k`` for small tables.
_SMALL_TABLE_MULTIPLIER: dict[int, float] = {2: 2.0, 3: 1.50, 4: 1.40, 5: 1.45}

#: Additive slack in cells, dominating for very small difference bounds.
_ADDITIVE_SLACK = 8


def cells_for_difference(
    difference_bound: int,
    num_hashes: int = 4,
    *,
    multiplier: float | None = None,
    slack: int | None = None,
) -> int:
    """Return a recommended cell count for decoding ``difference_bound`` keys.

    Parameters
    ----------
    difference_bound:
        Upper bound ``d`` on the number of keys that will remain in the table
        at decode time (the set-difference size for reconciliation).
    num_hashes:
        Number of hash functions ``k`` (3, 4 or 5 are sensible).
    multiplier, slack:
        Optional overrides of the built-in safety constants, used by the
        sizing ablation benchmark.

    Returns
    -------
    int
        A cell count that is a multiple of ``num_hashes`` (so the partitioned
        regions are equal) and at least ``2 * num_hashes``.
    """
    if difference_bound < 0:
        raise ParameterError("difference_bound must be non-negative")
    if num_hashes not in PEELING_THRESHOLDS:
        raise ParameterError(
            f"num_hashes must be one of {sorted(PEELING_THRESHOLDS)}, got {num_hashes}"
        )
    if multiplier is None:
        multiplier = _SMALL_TABLE_MULTIPLIER[num_hashes]
    if slack is None:
        slack = _ADDITIVE_SLACK
    threshold = PEELING_THRESHOLDS[num_hashes]
    raw = multiplier * difference_bound / threshold + slack
    cells = max(2 * num_hashes, int(math.ceil(raw)))
    # Round up to a multiple of k so every partition region has equal size.
    if cells % num_hashes:
        cells += num_hashes - (cells % num_hashes)
    return cells


def capacity_of(num_cells: int, num_hashes: int = 4) -> int:
    """Rough inverse of :func:`cells_for_difference`.

    Returns the largest difference bound for which a table of ``num_cells``
    cells is recommended; used by the doubling protocols when deciding whether
    a received table could plausibly decode.
    """
    if num_hashes not in PEELING_THRESHOLDS:
        raise ParameterError(
            f"num_hashes must be one of {sorted(PEELING_THRESHOLDS)}, got {num_hashes}"
        )
    threshold = PEELING_THRESHOLDS[num_hashes]
    multiplier = _SMALL_TABLE_MULTIPLIER[num_hashes]
    return max(0, int((num_cells - _ADDITIVE_SLACK) * threshold / multiplier))
