"""Batched construction of many IBLTs sharing one parameter set.

The set-of-sets protocols of Section 3 encode every child set of a parent
into its own small IBLT, all built from the *same* :class:`IBLTParameters`
(same seed, same cell count).  Built one at a time through
:meth:`IBLT.from_items`, each child pays for its own hash-family derivation,
backend resolution and per-table scatter -- a pure-Python ``O(n)`` loop that
dominates encoding for parents with many small children.

:class:`IBLTArray` materializes all ``s`` child tables in one pass instead:
the children are flattened to ``(child_index, element)`` pairs, the whole
flat element array is hashed once through the existing batch pipeline
(:meth:`~repro.hashing.family.HashFamily.cells_for_array`,
:meth:`~repro.hashing.checksum.Checksum.of_keys_array`), and the results are
scattered into a single ``(s, num_cells)`` cell tensor -- three ``ufunc.at``
calls for the entire parent set.  When the vectorized path is unavailable
(no NumPy, or keys wider than 64 bits) the array falls back to building each
row through the ordinary per-table path, so the contents are bit-identical
either way: ``IBLTArray(params, children).table(i)`` always equals
``IBLT.from_items(params, children[i])``.

The many-balls-into-many-bins structure of this batch build (every element
is a ball thrown into its child's row of bins) is exactly the regime the
balls-and-bins literature analyzes; nothing here depends on those bounds,
but they are why one flat scatter is safe: rows never interact.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import CapacityError, ParameterError
from repro.hashing.mix import HAS_NUMPY
from repro.iblt.backends import max_peel_rounds
from repro.iblt.table import IBLT, DecodeResult, IBLTParameters

if HAS_NUMPY:
    import numpy as _np


if HAS_NUMPY:

    def _peel_tensor(counts, key_xor, check_xor, family, checksum):
        """Peel every row of an ``(s, num_cells)`` cell tensor, in place.

        Rows never share cells, so one *global* round (pure-cell scan over the
        whole flattened tensor, per-(row, key) dedup, one batched removal)
        advances every still-active row exactly as its own isolated peeling
        round would -- a row with no pure cells is simply untouched and stays
        frozen.  Each row therefore evolves bit-identically to
        ``IBLT.try_decode`` on that row alone, at a fraction of the dispatch
        cost.  Returns one :class:`~repro.iblt.table.DecodeResult` per row.
        """
        num_tables, num_cells = counts.shape
        flat_counts = counts.reshape(-1)
        flat_keys = key_xor.reshape(-1)
        flat_checks = check_xor.reshape(-1)
        num_hashes = family.num_hashes
        positive: list[list[int]] = [[] for _ in range(num_tables)]
        negative: list[list[int]] = [[] for _ in range(num_tables)]
        for _ in range(max_peel_rounds(num_cells)):
            candidates = _np.nonzero((flat_counts == 1) | (flat_counts == -1))[0]
            if candidates.size == 0:
                break
            keys = flat_keys[candidates]
            checks = checksum.of_keys_array(keys)
            verified = flat_checks[candidates] == checks
            candidates = candidates[verified]
            if candidates.size == 0:
                break
            keys = keys[verified]
            checks = checks[verified]
            signs = flat_counts[candidates]
            rows = candidates // num_cells
            # First cell in ascending cell order wins per (row, key) pair --
            # the same tie-break as every in-store peel.  Sort by (row, key,
            # candidate position) and keep each group's first element.
            order = _np.lexsort((_np.arange(candidates.size), keys, rows))
            sorted_rows = rows[order]
            sorted_keys = keys[order]
            boundary = _np.ones(order.size, dtype=bool)
            boundary[1:] = (sorted_rows[1:] != sorted_rows[:-1]) | (
                sorted_keys[1:] != sorted_keys[:-1]
            )
            winners = order[boundary]
            chosen_keys = keys[winners]
            chosen_signs = signs[winners]
            chosen_checks = checks[winners]
            row_offsets = rows[winners] * num_cells
            cells = (family.cells_for_array(chosen_keys) + row_offsets).reshape(-1)
            _np.add.at(flat_counts, cells, _np.tile(-chosen_signs, num_hashes))
            _np.bitwise_xor.at(flat_keys, cells, _np.tile(chosen_keys, num_hashes))
            _np.bitwise_xor.at(flat_checks, cells, _np.tile(chosen_checks, num_hashes))
            for row, key, sign in zip(
                rows[winners].tolist(), chosen_keys.tolist(), chosen_signs.tolist()
            ):
                (positive[row] if sign == 1 else negative[row]).append(key)
        decoded = ~(
            counts.any(axis=1) | key_xor.any(axis=1) | check_xor.any(axis=1)
        )
        return [
            DecodeResult(bool(decoded[row]), set(positive[row]), set(negative[row]))
            for row in range(num_tables)
        ]


class IBLTArray:
    """A batch of IBLTs over shared parameters, built in one vectorized pass.

    Parameters
    ----------
    params:
        Shared table configuration; every row uses the same cell count, seed
        and widths (this is what lets the rows share one flat hashing pass).
    children:
        A sequence of key collections, one per table.  Row ``i`` holds
        exactly the contents of ``IBLT.from_items(params, children[i])``.
    backend:
        Cell-store backend name, with the same semantics as
        :class:`~repro.iblt.table.IBLT`: the vectorized tensor path is used
        when the resolved backend is vectorized and the parameters fit in 64
        bits, and the per-row reference path otherwise.  Materialized tables
        (:meth:`table`) resolve their stores through the same request.
    """

    def __init__(
        self,
        params: IBLTParameters,
        children: Sequence[Iterable[int]],
        backend: str | None = None,
    ) -> None:
        self.params = params
        children = [
            child if isinstance(child, (list, tuple)) else list(child)
            for child in children
        ]
        self.num_tables = len(children)
        # One template table supplies the shared hash family, checksum and
        # resolved cell store; rows clone it instead of re-deriving seeds.
        self._template = IBLT(params, backend=backend)
        store = self._template._store
        self._vectorized = (
            HAS_NUMPY
            and getattr(type(store), "vectorized", False)
            and params.key_bits <= 64
            and params.checksum_bits <= 64
        )
        if self._vectorized:
            self._tables: list[IBLT] | None = None
            self._build_tensor(children)
        else:
            self._counts = self._key_xor = self._check_xor = None
            tables = []
            for child in children:
                table = self._template.copy()
                table.insert_batch(child)
                tables.append(table)
            self._tables = tables

    @property
    def backend(self) -> str:
        """Name of the cell-store backend the rows resolved to."""
        return self._template.backend

    @property
    def vectorized(self) -> bool:
        """True when the rows live in one ``(s, num_cells)`` cell tensor."""
        return self._vectorized

    # -- construction ----------------------------------------------------------------

    def _build_tensor(self, children: list[list[int]]) -> None:
        """Flatten to (child_index, element) pairs and scatter them all at once."""
        params = self.params
        num_cells = params.num_cells
        flat: list[int] = []
        lengths = []
        for child in children:
            flat.extend(child)
            lengths.append(len(child))
        store = self._template._store
        keys = store.prepare_keys(flat, params.key_bits)  # validated uint64 array
        total_cells = self.num_tables * num_cells
        counts = _np.zeros(total_cells, dtype=_np.int64)
        key_xor = _np.zeros(total_cells, dtype=_np.uint64)
        check_xor = _np.zeros(total_cells, dtype=_np.uint64)
        if keys.size:
            family = self._template._family
            checksum = self._template._checksum
            # Row offset per flat key; broadcasting adds it to every hash row.
            offsets = _np.repeat(
                _np.arange(self.num_tables, dtype=_np.int64) * num_cells, lengths
            )
            cells = (family.cells_for_array(keys) + offsets).reshape(-1)
            checks = checksum.of_keys_array(keys)
            num_hashes = family.num_hashes
            _np.add.at(counts, cells, _np.int64(1))
            _np.bitwise_xor.at(key_xor, cells, _np.tile(keys, num_hashes))
            _np.bitwise_xor.at(check_xor, cells, _np.tile(checks, num_hashes))
        shape = (self.num_tables, num_cells)
        self._counts = counts.reshape(shape)
        self._key_xor = key_xor.reshape(shape)
        self._check_xor = check_xor.reshape(shape)

    @classmethod
    def from_difference(
        cls, minuend: IBLT, subtrahends: Sequence[IBLT]
    ) -> "IBLTArray | None":
        """Batch the differences ``minuend - subtrahends[i]`` into one array.

        Row ``i`` holds exactly the cells of
        ``minuend.subtract(subtrahends[i])``, stacked into one tensor so
        :meth:`decode_all` can peel every difference at once -- the decode
        side of the sets-of-sets candidate loops.  Returns ``None`` when any
        operand is off the tensor path (non-vectorized store), in which case
        callers should fall back to per-pair ``subtract().try_decode()``
        (whose lazy early exit is the better economics there anyway).
        """
        stores = [minuend._store] + [table._store for table in subtrahends]
        if not HAS_NUMPY or not all(
            hasattr(store, "dense_cells") for store in stores
        ):
            return None
        for table in subtrahends:
            if table.params != minuend.params:
                raise ParameterError("cannot combine IBLTs with different parameters")
        num_cells = minuend.params.num_cells
        base_counts, base_keys, base_checks = minuend._store.dense_cells()
        counts = _np.empty((len(subtrahends), num_cells), dtype=_np.int64)
        key_xor = _np.empty((len(subtrahends), num_cells), dtype=_np.uint64)
        check_xor = _np.empty((len(subtrahends), num_cells), dtype=_np.uint64)
        for index, table in enumerate(subtrahends):
            other_counts, other_keys, other_checks = table._store.dense_cells()
            counts[index] = base_counts - other_counts
            key_xor[index] = base_keys ^ other_keys
            check_xor[index] = base_checks ^ other_checks
        array = cls.__new__(cls)
        array.params = minuend.params
        array.num_tables = len(subtrahends)
        array._template = minuend
        array._vectorized = True
        array._tables = None
        array._counts = counts
        array._key_xor = key_xor
        array._check_xor = check_xor
        return array

    # -- materialization -------------------------------------------------------------

    def table(self, index: int) -> IBLT:
        """Materialize row ``index`` as an independent :class:`IBLT`.

        The returned table shares nothing mutable with the array, so callers
        may subtract from or decode it freely.
        """
        if self._tables is not None:
            return self._tables[index].copy()
        table = self._template.copy()
        table._store.load(
            self._counts[index].tolist(),
            self._key_xor[index].tolist(),
            self._check_xor[index].tolist(),
        )
        return table

    def tables(self) -> list[IBLT]:
        """Materialize every row (see :meth:`table`)."""
        return [self.table(index) for index in range(self.num_tables)]

    # -- decoding --------------------------------------------------------------------

    def decode_all(self) -> list[DecodeResult]:
        """Decode every row; row ``i`` equals ``self.table(i).try_decode()``.

        On the tensor path all rows peel together through one whole-tensor
        round loop (:func:`_peel_tensor`) without materializing a single
        per-row :class:`IBLT`; the fallback path decodes each materialized
        table through the ordinary in-store peel.  Results are bit-identical
        either way.
        """
        if self._tables is not None:
            return [table.try_decode() for table in self._tables]
        return _peel_tensor(
            self._counts.copy(),
            self._key_xor.copy(),
            self._check_xor.copy(),
            self._template._family,
            self._template._checksum,
        )

    # -- serialization ---------------------------------------------------------------

    def serialize_all(self) -> list[int]:
        """Canonical serializations of every row, in order.

        Row ``i`` equals ``self.table(i).serialize()`` bit for bit; on the
        tensor path the per-cell packing is one vectorized pass and only the
        final fixed-width big-integer assembly runs per row.
        """
        if self._tables is not None:
            return [table.serialize() for table in self._tables]
        params = self.params
        count_limit = 1 << params.count_bits
        half = count_limit >> 1
        counts = self._counts
        if counts.size and not (
            -half <= int(counts.min()) and int(counts.max()) < half
        ):
            raise CapacityError(
                f"a cell count does not fit in {params.count_bits} bits"
            )
        # Pack each cell into one Python int (object dtype: cells can exceed
        # 64 bits), matching IBLT.serialize's count || key_xor || check_xor.
        packed = (
            ((counts % count_limit).astype(object) << (params.key_bits + params.checksum_bits))
            | (self._key_xor.astype(object) << params.checksum_bits)
            | self._check_xor.astype(object)
        )
        cell_bits = params.cell_bits
        serialized = []
        for row in packed:
            encoded = 0
            for value in row:
                encoded = (encoded << cell_bits) | value
            serialized.append(encoded)
        return serialized

    def __len__(self) -> int:
        return self.num_tables

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IBLTArray(tables={self.num_tables}, cells={self.params.num_cells}, "
            f"backend={self.backend}, vectorized={self._vectorized})"
        )
