"""The compiled cell-store tier: numba-JIT scatter and peel loops.

:class:`NumbaCellStore` keeps the exact array layout of
:class:`~repro.iblt.backends.NumpyCellStore` (``int64`` counts, ``uint64``
XOR accumulators) and compiles the two loops that dominate IBLT encode and
decode into machine code with numba:

* the batch scatter behind ``insert_batch``/``delete_batch`` (one fused
  hash-and-update pass per key instead of ``ufunc.at`` scatters over tiled
  index arrays), and
* the whole peeling loop (:meth:`~repro.iblt.backends.CellStore.peel_rounds`):
  pure-cell scan, checksum verification, first-cell-wins dedup and removal
  run as one compiled function per decode, with no per-round Python or
  NumPy dispatch at all.

Both loops recompute bucket indices and checksums from the same splitmix64
core as :mod:`repro.hashing.mix` (the mixer is ~5 integer ops, so inlining
it beats materializing index matrices), which keeps the compiled tier
bit-identical to the other backends -- the cross-backend determinism suites
run unchanged against it.

Availability follows the library's graceful-fallback convention
(:mod:`repro.config`): when numba (or NumPy, which it builds on) is not
importable the class registers but reports unavailable, and requests for
``backend="numba"`` resolve down the chain ``numba -> numpy -> python``.
The first compiled call per process pays numba's JIT warm-up (a few hundred
milliseconds; amortized across the process by ``cache=True`` artifacts).
"""

from __future__ import annotations

from repro.config import register_cell_backend
from repro.hashing.mix import HAS_NUMPY
from repro.iblt.backends import NumpyCellStore, max_peel_rounds
from repro.jit import numba_available

if HAS_NUMPY:
    import numpy as _np

_COMPILED = None


def _compiled():
    """Build (once) and return the JIT-compiled scatter and peel kernels."""
    global _COMPILED
    if _COMPILED is None:
        from repro.iblt import _numba_kernels

        _COMPILED = (_numba_kernels.scatter, _numba_kernels.peel)
    return _COMPILED


@register_cell_backend
class NumbaCellStore(NumpyCellStore):
    """Compiled backend: NumPy array layout, numba-JIT hot loops."""

    name = "numba"
    vectorized = True
    priority = 20

    @classmethod
    def available(cls):
        return HAS_NUMPY and numba_available()

    @classmethod
    def supports(cls, params):
        return cls.available() and params.key_bits <= 64 and params.checksum_bits <= 64

    @staticmethod
    def _hash_arrays(family, checksum):
        """The hash-family and checksum constants in kernel-argument form."""
        seeds = _np.asarray(family._seeds, dtype=_np.uint64)
        starts = _np.asarray([start for start, _ in family._region_bounds], dtype=_np.int64)
        sizes = _np.asarray([size for _, size in family._region_bounds], dtype=_np.uint64)
        return (
            seeds,
            starts,
            sizes,
            _np.uint64(checksum._word_seeds[0]),
            _np.uint64(checksum._mask),
        )

    def apply_batch(self, keys, deltas, family, checksum):
        array = keys if isinstance(keys, _np.ndarray) else self.coerce_keys(keys)
        if array.size == 0:
            return
        if isinstance(deltas, int):
            delta_array = _np.full(array.size, deltas, dtype=_np.int64)
        else:
            delta_array = _np.asarray(deltas, dtype=_np.int64)
        scatter, _ = _compiled()
        scatter(
            self._counts,
            self._key_xor,
            self._check_xor,
            array,
            delta_array,
            *self._hash_arrays(family, checksum),
        )

    def peel_rounds(self, checksum, family):
        _, peel = _compiled()
        keys, signs = peel(
            self._counts,
            self._key_xor,
            self._check_xor,
            *self._hash_arrays(family, checksum),
            max_peel_rounds(self.num_cells),
        )
        positive = [int(key) for key, sign in zip(keys, signs) if sign == 1]
        negative = [int(key) for key, sign in zip(keys, signs) if sign == -1]
        return positive, negative

    def copy(self):
        clone = NumbaCellStore.__new__(NumbaCellStore)
        clone.num_cells = self.num_cells
        clone._counts = self._counts.copy()
        clone._key_xor = self._key_xor.copy()
        clone._check_xor = self._check_xor.copy()
        return clone
