"""Invertible Bloom Lookup Tables (IBLTs).

The IBLT (Goodrich & Mitzenmacher; Section 2 of the paper) is the workhorse
of every efficient protocol in this library.  This package provides:

* :class:`~repro.iblt.table.IBLT` -- the table itself: insert, delete,
  subtraction of two tables, signed peeling decode with checksum-verified
  pure cells, and canonical fixed-width serialization (so that a child IBLT
  can itself be a key of a parent IBLT -- the "IBLT of IBLTs" construction of
  Section 3.2).  ``insert_batch``/``delete_batch`` feed whole key
  collections to the cell store in one scatter, and ``subtract``/``merge``
  combine tables cell-wise through it.
* :class:`~repro.iblt.table.IBLTParameters` -- the shared configuration both
  parties must agree on (cells, hash count, key width, seed).
* :mod:`repro.iblt.backends` -- pluggable cell-store backends: a pure-Python
  reference store, a vectorized NumPy store, and a numba-compiled store
  (:mod:`repro.iblt.backends_numba`), selected through the
  :mod:`repro.config` registry and producing bit-identical tables.
* :class:`~repro.iblt.multi.IBLTArray` -- batched construction of many
  tables over shared parameters (all child sketches of a set-of-sets parent
  in one flat hashing-and-scatter pass).
* :mod:`repro.iblt.sizing` -- recommended table sizes for a target difference
  bound, following the peeling thresholds referenced by Theorem 2.1.
"""

from repro.iblt.backends import CellStore, NumpyCellStore, PythonCellStore
from repro.iblt.backends_numba import NumbaCellStore
from repro.iblt.table import IBLT, IBLTParameters, DecodeResult
from repro.iblt.multi import IBLTArray
from repro.iblt.sizing import cells_for_difference, PEELING_THRESHOLDS

__all__ = [
    "IBLT",
    "IBLTParameters",
    "DecodeResult",
    "IBLTArray",
    "CellStore",
    "PythonCellStore",
    "NumpyCellStore",
    "NumbaCellStore",
    "cells_for_difference",
    "PEELING_THRESHOLDS",
]
