"""The Invertible Bloom Lookup Table.

Each cell stores ``(count, key_xor, check_xor)`` exactly as described in
Section 2 of the paper: the number of keys hashed to the cell, the XOR of
those keys, and the XOR of a fixed-width checksum of those keys.  Deleting a
key is the same operation with the count decremented, so counts can go
negative; a table can therefore represent the *signed difference* of two
sets, which is how set reconciliation uses it (insert Alice's elements,
delete Bob's, peel what remains).

Peeling repeatedly extracts "pure" cells (count of +1 or -1 whose key
checksum matches the cell checksum) until the table is empty or stuck.  The
two failure modes of the paper are surfaced distinctly: a peeling failure
leaves the table non-empty and is always detected; a checksum failure is
caught when the final table is not structurally empty or by the caller's
whole-set hash.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CapacityError, DecodeError, ParameterError
from repro.hashing import Checksum, HashFamily, derive_seed
from repro.iblt.sizing import cells_for_difference


@dataclass(frozen=True)
class IBLTParameters:
    """Configuration that both parties must share for their IBLTs to combine.

    Parameters
    ----------
    num_cells:
        Number of cells ``m``.
    key_bits:
        Width of keys in bits.  Keys are non-negative integers below
        ``2**key_bits``.
    seed:
        Shared seed (public coins) from which the bucket hash functions and
        the cell checksum function are derived.
    num_hashes:
        Number of hash functions ``k``.
    checksum_bits:
        Width of the per-key checksum stored (XORed) in each cell.
    count_bits:
        Width used for the cell count in the serialized form.  Counts are
        stored in two's complement, so values in
        ``[-2**(count_bits-1), 2**(count_bits-1))`` are representable.
    """

    num_cells: int
    key_bits: int
    seed: int
    num_hashes: int = 4
    checksum_bits: int = 32
    count_bits: int = 16

    def __post_init__(self) -> None:
        if self.num_cells < self.num_hashes:
            raise ParameterError("num_cells must be at least num_hashes")
        if self.key_bits <= 0:
            raise ParameterError("key_bits must be positive")
        if self.num_hashes < 2:
            raise ParameterError("num_hashes must be at least 2")
        if self.checksum_bits < 8:
            raise ParameterError("checksum_bits must be at least 8")
        if self.count_bits < 4:
            raise ParameterError("count_bits must be at least 4")

    @classmethod
    def for_difference(
        cls,
        difference_bound: int,
        key_bits: int,
        seed: int,
        num_hashes: int = 4,
        checksum_bits: int = 32,
        count_bits: int = 16,
    ) -> "IBLTParameters":
        """Parameters sized (via :func:`cells_for_difference`) for ``d`` keys."""
        cells = cells_for_difference(max(1, difference_bound), num_hashes)
        return cls(
            num_cells=cells,
            key_bits=key_bits,
            seed=seed,
            num_hashes=num_hashes,
            checksum_bits=checksum_bits,
            count_bits=count_bits,
        )

    @property
    def cell_bits(self) -> int:
        """Serialized width of a single cell in bits."""
        return self.count_bits + self.key_bits + self.checksum_bits

    @property
    def size_bits(self) -> int:
        """Serialized width of the whole table in bits."""
        return self.num_cells * self.cell_bits


@dataclass
class DecodeResult:
    """Outcome of attempting to decode an IBLT.

    Attributes
    ----------
    success:
        True if the peeling emptied the table.
    positive:
        Keys recovered with positive count (inserted more often than deleted;
        for reconciliation these are ``S_A \\ S_B``).
    negative:
        Keys recovered with negative count (``S_B \\ S_A``).
    """

    success: bool
    positive: set[int] = field(default_factory=set)
    negative: set[int] = field(default_factory=set)

    def symmetric_difference_size(self) -> int:
        """Number of keys recovered on either side."""
        return len(self.positive) + len(self.negative)


class IBLT:
    """An Invertible Bloom Lookup Table over fixed-width integer keys."""

    def __init__(self, params: IBLTParameters) -> None:
        self.params = params
        self._counts = [0] * params.num_cells
        self._key_xor = [0] * params.num_cells
        self._check_xor = [0] * params.num_cells
        self._family = HashFamily(
            derive_seed(params.seed, "iblt-buckets"),
            params.num_hashes,
            params.num_cells,
        )
        self._checksum = Checksum(
            derive_seed(params.seed, "iblt-checksum"), params.checksum_bits
        )

    # -- construction helpers ------------------------------------------------------

    @classmethod
    def from_items(cls, params: IBLTParameters, items) -> "IBLT":
        """Build a table with every item of ``items`` inserted ("encode a set")."""
        table = cls(params)
        for item in items:
            table.insert(item)
        return table

    def copy(self) -> "IBLT":
        """Deep copy of the table (shares the immutable parameters)."""
        clone = IBLT(self.params)
        clone._counts = list(self._counts)
        clone._key_xor = list(self._key_xor)
        clone._check_xor = list(self._check_xor)
        return clone

    # -- mutation -------------------------------------------------------------------

    def _validate_key(self, key: int) -> None:
        if key < 0:
            raise ParameterError("IBLT keys must be non-negative")
        if key.bit_length() > self.params.key_bits:
            raise CapacityError(
                f"key of {key.bit_length()} bits exceeds key_bits="
                f"{self.params.key_bits}"
            )

    def _update(self, key: int, delta: int) -> None:
        self._validate_key(key)
        check = self._checksum.of_key(key)
        for cell in self._family.cells_for(key):
            self._counts[cell] += delta
            self._key_xor[cell] ^= key
            self._check_xor[cell] ^= check

    def insert(self, key: int) -> None:
        """Add a key to the table."""
        self._update(key, +1)

    def delete(self, key: int) -> None:
        """Remove a key from the table (counts may go negative)."""
        self._update(key, -1)

    def insert_all(self, keys) -> None:
        """Insert every key of an iterable."""
        for key in keys:
            self.insert(key)

    def delete_all(self, keys) -> None:
        """Delete every key of an iterable."""
        for key in keys:
            self.delete(key)

    # -- combination ----------------------------------------------------------------

    def _check_compatible(self, other: "IBLT") -> None:
        if self.params != other.params:
            raise ParameterError("cannot combine IBLTs with different parameters")

    def subtract(self, other: "IBLT") -> "IBLT":
        """Return a new table representing ``self - other``.

        If ``self`` encodes Alice's set and ``other`` encodes Bob's, the
        result encodes the signed symmetric difference and can be decoded to
        recover it (the "combine Alice and Bob's IBLTs" operation of
        Section 2).
        """
        self._check_compatible(other)
        result = self.copy()
        for cell in range(self.params.num_cells):
            result._counts[cell] -= other._counts[cell]
            result._key_xor[cell] ^= other._key_xor[cell]
            result._check_xor[cell] ^= other._check_xor[cell]
        return result

    def merge(self, other: "IBLT") -> "IBLT":
        """Return a new table representing the sum ``self + other``."""
        self._check_compatible(other)
        result = self.copy()
        for cell in range(self.params.num_cells):
            result._counts[cell] += other._counts[cell]
            result._key_xor[cell] ^= other._key_xor[cell]
            result._check_xor[cell] ^= other._check_xor[cell]
        return result

    # -- inspection -----------------------------------------------------------------

    def is_structurally_empty(self) -> bool:
        """True if every cell is all-zero (no keys remain, barring cancellation)."""
        return (
            all(count == 0 for count in self._counts)
            and all(key == 0 for key in self._key_xor)
            and all(check == 0 for check in self._check_xor)
        )

    def _is_pure(self, cell: int) -> bool:
        """A cell is pure when it holds exactly one key (checksum-verified)."""
        if self._counts[cell] not in (1, -1):
            return False
        return self._check_xor[cell] == self._checksum.of_key(self._key_xor[cell])

    # -- decoding -------------------------------------------------------------------

    def try_decode(self) -> DecodeResult:
        """Peel the table and report what was recovered.

        The table itself is not modified; peeling happens on a working copy.
        """
        work = self.copy()
        positive: set[int] = set()
        negative: set[int] = set()
        pending = [cell for cell in range(work.params.num_cells) if work._is_pure(cell)]
        while pending:
            cell = pending.pop()
            if not work._is_pure(cell):
                continue
            key = work._key_xor[cell]
            sign = work._counts[cell]
            if sign == 1:
                positive.add(key)
            else:
                negative.add(key)
            # Remove the key from every cell it hashes to (including this one).
            check = work._checksum.of_key(key)
            for touched in work._family.cells_for(key):
                work._counts[touched] -= sign
                work._key_xor[touched] ^= key
                work._check_xor[touched] ^= check
                if work._is_pure(touched):
                    pending.append(touched)
        success = work.is_structurally_empty()
        if not success:
            # A failed peel must not report partial sets that overlap; we keep
            # what was recovered (useful to the cascading protocol) but flag it.
            return DecodeResult(False, positive, negative)
        return DecodeResult(True, positive, negative)

    def decode(self) -> tuple[set[int], set[int]]:
        """Peel the table; raise :class:`DecodeError` if it does not empty."""
        result = self.try_decode()
        if not result.success:
            raise DecodeError(
                f"IBLT with {self.params.num_cells} cells failed to decode"
            )
        return result.positive, result.negative

    # -- serialization ---------------------------------------------------------------

    @property
    def size_bits(self) -> int:
        """Serialized size in bits (what a protocol pays to transmit this table)."""
        return self.params.size_bits

    def serialize(self) -> int:
        """Canonical fixed-width integer encoding of the table contents.

        The encoding packs cells from index 0 upward, each as
        ``count (two's complement) || key_xor || check_xor``.  Because the
        width is fully determined by the parameters, a serialized table can be
        used as a fixed-width key of a *parent* IBLT (Section 3.2).
        """
        params = self.params
        count_limit = 1 << params.count_bits
        half = count_limit >> 1
        encoded = 0
        for cell in range(params.num_cells):
            count = self._counts[cell]
            if not -half <= count < half:
                raise CapacityError(
                    f"cell count {count} does not fit in {params.count_bits} bits"
                )
            encoded = (encoded << params.count_bits) | (count % count_limit)
            encoded = (encoded << params.key_bits) | self._key_xor[cell]
            encoded = (encoded << params.checksum_bits) | self._check_xor[cell]
        return encoded

    @classmethod
    def deserialize(cls, params: IBLTParameters, encoded: int) -> "IBLT":
        """Inverse of :meth:`serialize`."""
        if encoded < 0 or encoded.bit_length() > params.size_bits:
            raise ParameterError("encoded value does not match the parameters")
        table = cls(params)
        count_limit = 1 << params.count_bits
        half = count_limit >> 1
        key_mask = (1 << params.key_bits) - 1
        check_mask = (1 << params.checksum_bits) - 1
        for cell in range(params.num_cells - 1, -1, -1):
            table._check_xor[cell] = encoded & check_mask
            encoded >>= params.checksum_bits
            table._key_xor[cell] = encoded & key_mask
            encoded >>= params.key_bits
            raw_count = encoded & (count_limit - 1)
            encoded >>= params.count_bits
            table._counts[cell] = raw_count - count_limit if raw_count >= half else raw_count
        return table

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IBLT):
            return NotImplemented
        return (
            self.params == other.params
            and self._counts == other._counts
            and self._key_xor == other._key_xor
            and self._check_xor == other._check_xor
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        occupied = sum(1 for count in self._counts if count != 0)
        return (
            f"IBLT(cells={self.params.num_cells}, key_bits={self.params.key_bits}, "
            f"occupied={occupied})"
        )
