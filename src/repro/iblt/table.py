"""The Invertible Bloom Lookup Table.

Each cell stores ``(count, key_xor, check_xor)`` exactly as described in
Section 2 of the paper: the number of keys hashed to the cell, the XOR of
those keys, and the XOR of a fixed-width checksum of those keys.  Deleting a
key is the same operation with the count decremented, so counts can go
negative; a table can therefore represent the *signed difference* of two
sets, which is how set reconciliation uses it (insert Alice's elements,
delete Bob's, peel what remains).

Cell storage is delegated to a pluggable backend (:mod:`repro.iblt.backends`,
selected through the :mod:`repro.config` registry): a pure-Python reference
store, or a vectorized NumPy store that hashes and scatters whole key arrays
at once.  :meth:`IBLT.insert_batch` and
:meth:`IBLT.delete_batch` feed the backend whole key batches in one scatter;
:meth:`IBLT.subtract` and :meth:`IBLT.merge` combine tables cell-wise through
the backend (``CellStore.combine``); the single-key methods remain for
incremental callers.  Backends produce bit-identical tables for the same parameters and
keys, so the backend choice is invisible to protocols (and to
serialization).

Peeling repeatedly extracts "pure" cells (count of +1 or -1 whose key
checksum matches the cell checksum) until the table is empty or stuck.  The
peeler works in rounds: each round asks the backend for every currently pure
cell in one scan (vectorized on the NumPy backend), then removes all the
recovered keys in one batch update.  The two failure modes of the paper are
surfaced distinctly: a peeling failure leaves the table non-empty and is
always detected; a checksum failure is caught when the final table is not
structurally empty or by the caller's whole-set hash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice

from repro.config import resolve_cell_backend
from repro.errors import CapacityError, DecodeError, ParameterError
from repro.hashing import Checksum, HashFamily, derive_seed
from repro.iblt import backends as _backends  # also registers the built-in backends
from repro.iblt.sizing import cells_for_difference


@dataclass(frozen=True)
class IBLTParameters:
    """Configuration that both parties must share for their IBLTs to combine.

    Parameters
    ----------
    num_cells:
        Number of cells ``m``.
    key_bits:
        Width of keys in bits.  Keys are non-negative integers below
        ``2**key_bits``.
    seed:
        Shared seed (public coins) from which the bucket hash functions and
        the cell checksum function are derived.
    num_hashes:
        Number of hash functions ``k``.
    checksum_bits:
        Width of the per-key checksum stored (XORed) in each cell.
    count_bits:
        Width used for the cell count in the serialized form.  Counts are
        stored in two's complement, so values in
        ``[-2**(count_bits-1), 2**(count_bits-1))`` are representable.

    The cell-store backend is deliberately *not* part of the parameters: two
    tables built with different backends but equal parameters hold identical
    cell contents and combine freely.
    """

    num_cells: int
    key_bits: int
    seed: int
    num_hashes: int = 4
    checksum_bits: int = 32
    count_bits: int = 16

    def __post_init__(self) -> None:
        if self.num_cells < self.num_hashes:
            raise ParameterError("num_cells must be at least num_hashes")
        if self.key_bits <= 0:
            raise ParameterError("key_bits must be positive")
        if self.num_hashes < 2:
            raise ParameterError("num_hashes must be at least 2")
        if self.checksum_bits < 8:
            raise ParameterError("checksum_bits must be at least 8")
        if self.count_bits < 4:
            raise ParameterError("count_bits must be at least 4")

    @classmethod
    def for_difference(
        cls,
        difference_bound: int,
        key_bits: int,
        seed: int,
        num_hashes: int = 4,
        checksum_bits: int = 32,
        count_bits: int = 16,
    ) -> "IBLTParameters":
        """Parameters sized (via :func:`cells_for_difference`) for ``d`` keys."""
        cells = cells_for_difference(max(1, difference_bound), num_hashes)
        return cls(
            num_cells=cells,
            key_bits=key_bits,
            seed=seed,
            num_hashes=num_hashes,
            checksum_bits=checksum_bits,
            count_bits=count_bits,
        )

    @property
    def cell_bits(self) -> int:
        """Serialized width of a single cell in bits."""
        return self.count_bits + self.key_bits + self.checksum_bits

    @property
    def size_bits(self) -> int:
        """Serialized width of the whole table in bits."""
        return self.num_cells * self.cell_bits


@dataclass
class DecodeResult:
    """Outcome of attempting to decode an IBLT.

    Attributes
    ----------
    success:
        True if the peeling emptied the table.
    positive:
        Keys recovered with positive count (inserted more often than deleted;
        for reconciliation these are ``S_A \\ S_B``).
    negative:
        Keys recovered with negative count (``S_B \\ S_A``).
    """

    success: bool
    positive: set[int] = field(default_factory=set)
    negative: set[int] = field(default_factory=set)

    def symmetric_difference_size(self) -> int:
        """Number of keys recovered on either side."""
        return len(self.positive) + len(self.negative)


class IBLT:
    """An Invertible Bloom Lookup Table over fixed-width integer keys.

    Parameters
    ----------
    params:
        Shared table configuration.
    backend:
        Cell-store backend name (``"python"``, ``"numpy"``, or ``"auto"``);
        ``None`` uses the process default (see :mod:`repro.config`).  A
        backend that cannot represent ``params`` -- e.g. the NumPy store for
        keys wider than 64 bits -- silently falls back to the pure-Python
        reference store.
    """

    def __init__(self, params: IBLTParameters, backend: str | None = None) -> None:
        self.params = params
        self._store = resolve_cell_backend(backend, params)(params.num_cells)
        self._family = HashFamily(
            derive_seed(params.seed, "iblt-buckets"),
            params.num_hashes,
            params.num_cells,
        )
        self._checksum = Checksum(
            derive_seed(params.seed, "iblt-checksum"), params.checksum_bits
        )

    @property
    def backend(self) -> str:
        """Name of the cell-store backend this table resolved to."""
        return self._store.name

    # -- construction helpers ------------------------------------------------------

    @classmethod
    def from_items(
        cls, params: IBLTParameters, items, backend: str | None = None
    ) -> "IBLT":
        """Build a table with every item of ``items`` inserted ("encode a set")."""
        table = cls(params, backend=backend)
        table.insert_batch(items)
        return table

    def copy(self) -> "IBLT":
        """Deep copy of the table (shares the immutable parameters and hashers)."""
        clone = IBLT.__new__(IBLT)
        clone.params = self.params
        clone._family = self._family
        clone._checksum = self._checksum
        clone._store = self._store.copy()
        return clone

    # -- mutation -------------------------------------------------------------------

    def _validate_key(self, key: int) -> None:
        _backends._validate_key_scalar(key, self.params.key_bits)

    def _update(self, key: int, delta: int) -> None:
        self._validate_key(key)
        self._store.apply(
            self._family.cells_for(key), key, self._checksum.of_key(key), delta
        )

    def insert(self, key: int) -> None:
        """Add a key to the table."""
        self._update(key, +1)

    def delete(self, key: int) -> None:
        """Remove a key from the table (counts may go negative)."""
        self._update(key, -1)

    def _update_batch(self, keys, delta: int) -> None:
        prepared = self._store.prepare_keys(keys, self.params.key_bits)
        self._store.apply_batch(prepared, delta, self._family, self._checksum)

    def insert_batch(self, keys) -> None:
        """Insert a whole batch of keys through the backend's scatter path."""
        self._update_batch(keys, +1)

    def delete_batch(self, keys) -> None:
        """Delete a whole batch of keys through the backend's scatter path."""
        self._update_batch(keys, -1)

    #: Chunk size for the streaming insert_all/delete_all wrappers: large
    #: enough to amortize the vectorized scatter, small enough to keep the
    #: memory of unbounded iterables constant.
    _STREAM_CHUNK = 1 << 16

    def _update_all(self, keys, delta: int) -> None:
        iterator = iter(keys)
        while chunk := list(islice(iterator, self._STREAM_CHUNK)):
            self._update_batch(chunk, delta)

    def insert_all(self, keys) -> None:
        """Insert every key of an iterable.

        Routed through :meth:`insert_batch` in bounded chunks, so arbitrary
        (even unbounded) iterables stream in constant memory while still
        getting the backend's batch scatter path.  On a validation error,
        chunks before the offending one remain applied.
        """
        self._update_all(keys, +1)

    def delete_all(self, keys) -> None:
        """Delete every key of an iterable (streaming counterpart of
        :meth:`delete_batch`; see :meth:`insert_all`)."""
        self._update_all(keys, -1)

    # -- combination ----------------------------------------------------------------

    def _check_compatible(self, other: "IBLT") -> None:
        if self.params != other.params:
            raise ParameterError("cannot combine IBLTs with different parameters")

    def subtract(self, other: "IBLT") -> "IBLT":
        """Return a new table representing ``self - other``.

        If ``self`` encodes Alice's set and ``other`` encodes Bob's, the
        result encodes the signed symmetric difference and can be decoded to
        recover it (the "combine Alice and Bob's IBLTs" operation of
        Section 2).  Backends may differ between the operands; the result
        keeps ``self``'s backend.
        """
        self._check_compatible(other)
        result = self.copy()
        result._store.combine(other._store, -1)
        return result

    def merge(self, other: "IBLT") -> "IBLT":
        """Return a new table representing the sum ``self + other``."""
        self._check_compatible(other)
        result = self.copy()
        result._store.combine(other._store, +1)
        return result

    # -- inspection -----------------------------------------------------------------

    def is_structurally_empty(self) -> bool:
        """True if every cell is all-zero (no keys remain, barring cancellation)."""
        return self._store.is_empty()

    # -- decoding -------------------------------------------------------------------

    def try_decode(self) -> DecodeResult:
        """Peel the table and report what was recovered.

        The table itself is not modified; peeling happens on a working copy.
        The whole peeling loop runs inside the backend
        (:meth:`~repro.iblt.backends.CellStore.peel_rounds`): every currently
        pure cell is found in one scan, then all recovered keys are removed
        in one batch update, round after round, entirely in the store's
        vectorized or compiled code.  The round structure is identical
        across backends, so decode results are too; this method only
        collects the recovered keys.  On a failed peel the partial sets are
        kept (useful to the cascading protocol) but flagged.
        """
        work = self.copy()
        positive, negative = work._store.peel_rounds(work._checksum, work._family)
        return DecodeResult(work._store.is_empty(), set(positive), set(negative))

    def decode(self) -> tuple[set[int], set[int]]:
        """Peel the table; raise :class:`DecodeError` if it does not empty."""
        result = self.try_decode()
        if not result.success:
            raise DecodeError(
                f"IBLT with {self.params.num_cells} cells failed to decode"
            )
        return result.positive, result.negative

    # -- serialization ---------------------------------------------------------------

    @property
    def size_bits(self) -> int:
        """Serialized size in bits (what a protocol pays to transmit this table)."""
        return self.params.size_bits

    def serialize(self) -> int:
        """Canonical fixed-width integer encoding of the table contents.

        The encoding packs cells from index 0 upward, each as
        ``count (two's complement) || key_xor || check_xor``.  Because the
        width is fully determined by the parameters, a serialized table can be
        used as a fixed-width key of a *parent* IBLT (Section 3.2).  The
        encoding is backend-independent: equal contents serialize equally.

        Cells are joined by balanced pairwise folding: appending one cell at
        a time re-copies the whole accumulated big integer per cell, which
        is quadratic in table size and dominates everything else at the
        hundreds-of-thousands-of-cells tables the n=1e7 benchmarks build.
        """
        params = self.params
        counts, key_xors, check_xors = self._store.snapshot()
        count_limit = 1 << params.count_bits
        half = count_limit >> 1
        cell_bits = params.count_bits + params.key_bits + params.checksum_bits
        chunks = []
        for cell in range(params.num_cells):
            count = counts[cell]
            if not -half <= count < half:
                raise CapacityError(
                    f"cell count {count} does not fit in {params.count_bits} bits"
                )
            chunks.append(
                ((((count % count_limit) << params.key_bits) | key_xors[cell])
                 << params.checksum_bits) | check_xors[cell]
            )
        if not chunks:
            return 0
        widths = [cell_bits] * len(chunks)
        while len(chunks) > 1:
            joined_chunks, joined_widths = [], []
            for index in range(0, len(chunks) - 1, 2):
                joined_chunks.append(
                    (chunks[index] << widths[index + 1]) | chunks[index + 1]
                )
                joined_widths.append(widths[index] + widths[index + 1])
            if len(chunks) % 2:
                joined_chunks.append(chunks[-1])
                joined_widths.append(widths[-1])
            chunks, widths = joined_chunks, joined_widths
        return chunks[0]

    @classmethod
    def deserialize(
        cls, params: IBLTParameters, encoded: int, backend: str | None = None
    ) -> "IBLT":
        """Inverse of :meth:`serialize`.

        Splits the big integer by recursive halving (the mirror image of
        serialize's pairwise fold): shifting one cell off the end at a time
        re-copies the remaining integer per cell, quadratic in table size.
        """
        if encoded < 0 or encoded.bit_length() > params.size_bits:
            raise ParameterError("encoded value does not match the parameters")
        table = cls(params, backend=backend)
        count_limit = 1 << params.count_bits
        half = count_limit >> 1
        key_mask = (1 << params.key_bits) - 1
        check_mask = (1 << params.checksum_bits) - 1
        cell_bits = params.count_bits + params.key_bits + params.checksum_bits

        def split(value: int, count: int) -> list[int]:
            if count == 1:
                return [value]
            right_count = count // 2
            right_bits = cell_bits * right_count
            left = value >> right_bits
            right = value & ((1 << right_bits) - 1)
            return split(left, count - right_count) + split(right, right_count)

        counts = [0] * params.num_cells
        key_xors = [0] * params.num_cells
        check_xors = [0] * params.num_cells
        packed_cells = split(encoded, params.num_cells) if params.num_cells else []
        for cell, packed in enumerate(packed_cells):
            check_xors[cell] = packed & check_mask
            packed >>= params.checksum_bits
            key_xors[cell] = packed & key_mask
            raw_count = packed >> params.key_bits
            counts[cell] = raw_count - count_limit if raw_count >= half else raw_count
        table._store.load(counts, key_xors, check_xors)
        return table

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IBLT):
            return NotImplemented
        return (
            self.params == other.params
            and self._store.snapshot() == other._store.snapshot()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        occupied = sum(1 for count in self._store.snapshot()[0] if count != 0)
        return (
            f"IBLT(cells={self.params.num_cells}, key_bits={self.params.key_bits}, "
            f"occupied={occupied}, backend={self._store.name})"
        )
