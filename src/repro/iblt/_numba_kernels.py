"""numba-compiled inner loops for :class:`~repro.iblt.backends_numba.NumbaCellStore`.

Importing this module compiles (or loads from numba's on-disk cache) the two
kernels the compiled cell-store tier runs:

* :func:`scatter` -- fused hash-and-update batch insert/delete, and
* :func:`peel` -- the entire peeling decode loop.

Only import it behind :func:`repro.jit.numba_available`; the kernels are
defined at module level (a ``cache=True`` requirement -- numba cannot cache
closures) and the import fails outright without numba.

Determinism: the kernels re-derive bucket indices and checksums from the
splitmix64 finalizer exactly as :mod:`repro.hashing.mix` defines it, and the
peel loop chooses the first pure cell in ascending cell order for a key that
is pure in several cells -- the same tie-break as the Python and NumPy
stores -- so cell contents, per-round key sets, and round structure are
bit-identical across tiers.
"""

from __future__ import annotations

import numpy as np

from repro.jit import get_njit

njit = get_njit()

_MULT_A = np.uint64(0xBF58476D1CE4E5B9)
_MULT_B = np.uint64(0x94D049BB133111EB)
_S30 = np.uint64(30)
_S27 = np.uint64(27)
_S31 = np.uint64(31)


@njit(cache=True, inline="always")
def _mix64(value):
    """Splitmix64 finalizer on one ``uint64`` word (wraps modulo 2**64)."""
    value ^= value >> _S30
    value *= _MULT_A
    value ^= value >> _S27
    value *= _MULT_B
    value ^= value >> _S31
    return value


@njit(cache=True)
def scatter(counts, key_xor, check_xor, keys, deltas, seeds, starts, sizes,
            check_seed, check_mask):
    """Scatter ``keys`` into their cells with per-key ``deltas``, fused with hashing."""
    num_hashes = seeds.shape[0]
    for index in range(keys.shape[0]):
        key = keys[index]
        delta = deltas[index]
        check = _mix64(key ^ check_seed) & check_mask
        for hash_index in range(num_hashes):
            bucket = _mix64(key ^ seeds[hash_index]) % sizes[hash_index]
            cell = starts[hash_index] + np.int64(bucket)
            counts[cell] += delta
            key_xor[cell] ^= key
            check_xor[cell] ^= check


@njit(cache=True)
def peel(counts, key_xor, check_xor, seeds, starts, sizes, check_seed,
         check_mask, max_rounds):
    """Run the whole peeling loop in place; return recovered (keys, signs).

    Each round snapshots every verified pure cell before any removal,
    dedups keys (first cell in ascending order wins), removes the chosen
    keys, and appends them to the output.  Matches the generic
    :meth:`~repro.iblt.backends.CellStore.peel_rounds` round for round.
    """
    num_cells = counts.shape[0]
    num_hashes = seeds.shape[0]

    cand_keys = np.empty(num_cells, dtype=np.uint64)
    cand_signs = np.empty(num_cells, dtype=np.int64)
    cand_checks = np.empty(num_cells, dtype=np.uint64)

    capacity = 64
    out_keys = np.empty(capacity, dtype=np.uint64)
    out_signs = np.empty(capacity, dtype=np.int64)
    recovered = 0

    for _ in range(max_rounds):
        # Phase 1: snapshot this round's verified pure cells.
        found = 0
        for cell in range(num_cells):
            count = counts[cell]
            if count == 1 or count == -1:
                key = key_xor[cell]
                check = _mix64(key ^ check_seed) & check_mask
                if check_xor[cell] == check:
                    cand_keys[found] = key
                    cand_signs[found] = count
                    cand_checks[found] = check
                    found += 1
        if found == 0:
            break

        # Phase 2: dedup -- for each distinct key keep the smallest original
        # index (= first cell in ascending order).  argsort groups equal keys
        # without assuming the sort is stable.
        order = np.argsort(cand_keys[:found])
        run_start = 0
        while run_start < found:
            run_end = run_start + 1
            key = cand_keys[order[run_start]]
            winner = order[run_start]
            while run_end < found and cand_keys[order[run_end]] == key:
                if order[run_end] < winner:
                    winner = order[run_end]
                run_end += 1

            sign = cand_signs[winner]
            check = cand_checks[winner]
            # Phase 3 (per chosen key): remove and record.  The count/XOR
            # updates commute, so applying them serially leaves the same
            # cells as the NumPy store's batched scatter.
            for hash_index in range(num_hashes):
                bucket = _mix64(key ^ seeds[hash_index]) % sizes[hash_index]
                cell = starts[hash_index] + np.int64(bucket)
                counts[cell] -= sign
                key_xor[cell] ^= key
                check_xor[cell] ^= check
            if recovered == capacity:
                capacity *= 2
                grown_keys = np.empty(capacity, dtype=np.uint64)
                grown_signs = np.empty(capacity, dtype=np.int64)
                grown_keys[:recovered] = out_keys
                grown_signs[:recovered] = out_signs
                out_keys = grown_keys
                out_signs = grown_signs
            out_keys[recovered] = key
            out_signs[recovered] = sign
            recovered += 1

            run_start = run_end

    return out_keys[:recovered], out_signs[:recovered]
