"""Pluggable cell-store backends for the IBLT.

An IBLT is three parallel per-cell accumulators -- ``count``, ``key_xor``
and ``check_xor`` -- plus a scatter pattern derived from the hash family.
Everything else (peeling logic, serialization, protocol plumbing) is generic
over *how* those accumulators are stored and updated.  This module defines
that seam:

* :class:`CellStore` -- the abstract backend interface.  A backend owns the
  three accumulators and implements batch scatter updates, batch pure-cell
  scans, the whole peeling loop (:meth:`CellStore.peel_rounds`), in-place
  combination, and snapshot/load for serialization.
* :class:`PythonCellStore` -- the reference implementation over plain Python
  lists.  Handles keys of any width; always available.
* :class:`NumpyCellStore` -- vectorized implementation over NumPy ``int64``
  count and ``uint64`` XOR arrays.  Batch inserts hash whole key arrays
  through :meth:`~repro.hashing.family.HashFamily.cells_for_array` and
  scatter with ``ufunc.at``; the peeler runs whole rounds (pure-cell scan,
  checksum verification, per-key dedup, batch removal) as vector
  operations.  Requires keys and checksums of at most 64 bits, so
  tables whose keys are serialized child IBLTs (Section 3.2) transparently
  fall back to :class:`PythonCellStore` via the registry
  (:mod:`repro.config`).
* :class:`~repro.iblt.backends_numba.NumbaCellStore` (registered from its
  own module) -- the compiled tier: the same array layout as the NumPy
  store with the scatter and peel loops JIT-compiled by numba.  Falls back
  along ``numba -> numpy -> python`` when a dependency is missing.

Both backends derive every bucket index and checksum from the same 64-bit
mixing core (:mod:`repro.hashing.mix`), so a given parameter set and key
sequence produces bit-identical cell contents -- and therefore identical
serialized tables and decode results -- regardless of backend.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar, Sequence

from repro.config import register_cell_backend
from repro.errors import CapacityError, ParameterError
from repro.hashing import Checksum, HashFamily
from repro.hashing.mix import HAS_NUMPY

if HAS_NUMPY:
    import numpy as _np


def max_peel_rounds(num_cells: int) -> int:
    """The peeling round cap every backend's :meth:`CellStore.peel_rounds` obeys.

    A successful peel removes at least one key per round and never needs
    more rounds than keys; the cap only guards degenerate adversarial
    states.  It is part of the cross-backend observational contract (all
    tiers stop after identical round sequences), so it lives here rather
    than in any one peel implementation.
    """
    return 4 * num_cells + 16


def _validate_key_scalar(key: int, key_bits: int) -> None:
    """Shared single-key validation (exact error parity across backends)."""
    if not isinstance(key, int):
        raise ParameterError("IBLT keys must be Python integers")
    if key < 0:
        raise ParameterError("IBLT keys must be non-negative")
    if key.bit_length() > key_bits:
        raise CapacityError(
            f"key of {key.bit_length()} bits exceeds key_bits={key_bits}"
        )


class CellStore(ABC):
    """Storage backend for the per-cell ``(count, key_xor, check_xor)`` triples."""

    #: Registry name; also reported by :attr:`repro.iblt.table.IBLT.backend`.
    name: ClassVar[str]
    #: True when batch operations run over whole arrays rather than loops.
    vectorized: ClassVar[bool]
    #: Auto-selection preference; higher wins (see :mod:`repro.config`).
    priority: ClassVar[int]

    def __init__(self, num_cells: int) -> None:
        self.num_cells = num_cells

    # -- capability probes ----------------------------------------------------------

    @classmethod
    def available(cls) -> bool:
        """True when the backend's dependencies are importable."""
        return True

    @classmethod
    def supports(cls, params) -> bool:
        """True when the backend can represent tables with these parameters."""
        return True

    # -- mutation -------------------------------------------------------------------

    @abstractmethod
    def apply(self, cells: Sequence[int], key: int, check: int, delta: int) -> None:
        """Scatter one key (with its checksum) into its cells with ``delta``."""

    @abstractmethod
    def prepare_keys(self, keys, key_bits: int):
        """Validate a key batch and return the representation ``apply_batch`` takes."""

    @abstractmethod
    def coerce_keys(self, keys: Sequence[int]):
        """Like :meth:`prepare_keys` for keys already known valid (peeling)."""

    @abstractmethod
    def apply_batch(self, keys, deltas, family: HashFamily, checksum: Checksum) -> None:
        """Scatter a prepared key batch; ``deltas`` is one int or one per key."""

    @abstractmethod
    def combine(self, other: "CellStore", sign: int) -> None:
        """In-place cell-wise ``self += sign * other`` (counts add, XORs fold)."""

    # -- peeling --------------------------------------------------------------------

    def peel_rounds(self, checksum: Checksum, family: HashFamily) -> tuple[list[int], list[int]]:
        """Run the entire peeling loop in-store; return recovered keys.

        Peels the table in place, round by round: every currently pure cell
        (count of +-1, checksum-verified) is found in one scan, each key is
        chosen exactly once per round (first cell in ascending cell order
        wins, which fixes the order deterministically), and all chosen keys
        are removed in one batch update.  Stops when a round finds no pure
        cell or after :func:`max_peel_rounds` rounds.

        Returns the keys recovered with positive and negative counts.
        Backends override this to run whole rounds in vectorized or compiled
        code; every implementation must peel the identical per-round key
        sets (ordering within a round may differ -- callers consume sets)
        and leave identical final cell contents, so the round structure and
        decode results match across tiers (the cross-backend determinism
        suites pin both).
        """
        positive: list[int] = []
        negative: list[int] = []
        for _ in range(max_peel_rounds(self.num_cells)):
            keys, signs = self.pure_cells(checksum)
            if not keys:
                break
            # One key can be pure in several cells; remove it exactly once.
            chosen: dict[int, int] = {}
            for key, sign in zip(keys, signs):
                if key not in chosen:
                    chosen[key] = sign
            deltas = []
            for key, sign in chosen.items():
                (positive if sign == 1 else negative).append(key)
                deltas.append(-sign)
            self.apply_batch(self.coerce_keys(list(chosen)), deltas, family, checksum)
        return positive, negative

    # -- inspection -----------------------------------------------------------------

    @abstractmethod
    def is_empty(self) -> bool:
        """True when every cell is all-zero."""

    @abstractmethod
    def pure_cells(self, checksum: Checksum) -> tuple[list[int], list[int]]:
        """Scan for candidate pure cells (count of +-1, checksum-verified).

        Returns the cell keys and matching signs in ascending cell order;
        keys may repeat when one key is pure in several cells.
        """

    @abstractmethod
    def snapshot(self) -> tuple[list[int], list[int], list[int]]:
        """Cell contents as ``(counts, key_xors, check_xors)`` Python lists."""

    @abstractmethod
    def load(self, counts: list[int], key_xors: list[int], check_xors: list[int]) -> None:
        """Replace the cell contents wholesale (deserialization)."""

    @abstractmethod
    def copy(self) -> "CellStore":
        """Independent deep copy."""


@register_cell_backend
class PythonCellStore(CellStore):
    """Reference backend over plain Python lists (any key width)."""

    name = "python"
    vectorized = False
    priority = 0

    def __init__(self, num_cells: int) -> None:
        super().__init__(num_cells)
        self._counts = [0] * num_cells
        self._key_xor = [0] * num_cells
        self._check_xor = [0] * num_cells

    def apply(self, cells, key, check, delta):
        counts, key_xor, check_xor = self._counts, self._key_xor, self._check_xor
        for cell in cells:
            counts[cell] += delta
            key_xor[cell] ^= key
            check_xor[cell] ^= check

    def prepare_keys(self, keys, key_bits):
        keys = list(keys)
        for key in keys:
            _validate_key_scalar(key, key_bits)
        return keys

    def coerce_keys(self, keys):
        return keys

    def apply_batch(self, keys, deltas, family, checksum):
        counts, key_xor, check_xor = self._counts, self._key_xor, self._check_xor
        if isinstance(deltas, int):
            deltas = [deltas] * len(keys)
        checks = checksum.of_keys(keys)
        cell_rows = family.cells_for_many(keys)
        for key, delta, check, cells in zip(keys, deltas, checks, cell_rows):
            for cell in cells:
                counts[cell] += delta
                key_xor[cell] ^= key
                check_xor[cell] ^= check

    def combine(self, other, sign):
        if isinstance(other, PythonCellStore):  # read directly, skip the copies
            other_counts = other._counts
            other_keys = other._key_xor
            other_checks = other._check_xor
        else:
            other_counts, other_keys, other_checks = other.snapshot()
        counts, key_xor, check_xor = self._counts, self._key_xor, self._check_xor
        for cell in range(self.num_cells):
            counts[cell] += sign * other_counts[cell]
            key_xor[cell] ^= other_keys[cell]
            check_xor[cell] ^= other_checks[cell]

    def is_empty(self):
        return (
            all(count == 0 for count in self._counts)
            and all(key == 0 for key in self._key_xor)
            and all(check == 0 for check in self._check_xor)
        )

    def pure_cells(self, checksum):
        keys: list[int] = []
        signs: list[int] = []
        key_xor, check_xor = self._key_xor, self._check_xor
        for cell, count in enumerate(self._counts):
            if count == 1 or count == -1:
                key = key_xor[cell]
                if check_xor[cell] == checksum.of_key(key):
                    keys.append(key)
                    signs.append(count)
        return keys, signs

    def snapshot(self):
        return list(self._counts), list(self._key_xor), list(self._check_xor)

    def load(self, counts, key_xors, check_xors):
        self._counts = list(counts)
        self._key_xor = list(key_xors)
        self._check_xor = list(check_xors)

    def copy(self):
        clone = PythonCellStore.__new__(PythonCellStore)
        clone.num_cells = self.num_cells
        clone._counts = list(self._counts)
        clone._key_xor = list(self._key_xor)
        clone._check_xor = list(self._check_xor)
        return clone


@register_cell_backend
class NumpyCellStore(CellStore):
    """Vectorized backend over NumPy arrays (keys and checksums <= 64 bits)."""

    name = "numpy"
    vectorized = True
    priority = 10

    def __init__(self, num_cells: int) -> None:
        super().__init__(num_cells)
        self._counts = _np.zeros(num_cells, dtype=_np.int64)
        self._key_xor = _np.zeros(num_cells, dtype=_np.uint64)
        self._check_xor = _np.zeros(num_cells, dtype=_np.uint64)

    @classmethod
    def available(cls):
        return HAS_NUMPY

    @classmethod
    def supports(cls, params):
        return HAS_NUMPY and params.key_bits <= 64 and params.checksum_bits <= 64

    def apply(self, cells, key, check, delta):
        counts, key_xor, check_xor = self._counts, self._key_xor, self._check_xor
        key_word = _np.uint64(key)
        check_word = _np.uint64(check)
        for cell in cells:
            counts[cell] += delta
            key_xor[cell] ^= key_word
            check_xor[cell] ^= check_word

    def prepare_keys(self, keys, key_bits):
        keys = list(keys)
        # np.asarray would silently truncate floats (1.5 -> 1) and, on
        # NumPy 1.x, wrap negative ints into uint64 -- both would break the
        # exact-parity guarantee, so check types and signs explicitly.
        for key in keys:
            if not isinstance(key, int):
                raise ParameterError("IBLT keys must be Python integers")
        if keys and min(keys) < 0:
            raise ParameterError("IBLT keys must be non-negative")
        try:
            array = _np.asarray(keys, dtype=_np.uint64)
        except (OverflowError, TypeError, ValueError):
            # A >64-bit key somewhere: re-raise with exact parity.
            for key in keys:
                _validate_key_scalar(key, key_bits)
            raise  # pragma: no cover - scalar validation always raises first
        if key_bits < 64 and array.size:
            oversized = array >> _np.uint64(key_bits)
            if oversized.any():
                offender = int(array[_np.nonzero(oversized)[0][0]])
                _validate_key_scalar(offender, key_bits)
        return array

    def coerce_keys(self, keys):
        return _np.asarray(keys, dtype=_np.uint64)

    def apply_batch(self, keys, deltas, family, checksum):
        array = keys if isinstance(keys, _np.ndarray) else self.coerce_keys(keys)
        if array.size == 0:
            return
        num_hashes = family.num_hashes
        # One flat scatter per accumulator: ufunc.at needs the value array to
        # match the (flattened) index array exactly, so tile per hash row.
        cells = family.cells_for_array(array).reshape(-1)
        checks = checksum.of_keys_array(array)
        if isinstance(deltas, int):
            _np.add.at(self._counts, cells, _np.int64(deltas))
        else:
            delta_array = _np.asarray(deltas, dtype=_np.int64)
            _np.add.at(self._counts, cells, _np.tile(delta_array, num_hashes))
        _np.bitwise_xor.at(self._key_xor, cells, _np.tile(array, num_hashes))
        _np.bitwise_xor.at(self._check_xor, cells, _np.tile(checks, num_hashes))

    def combine(self, other, sign):
        if isinstance(other, NumpyCellStore):
            other_counts = other._counts
            other_keys = other._key_xor
            other_checks = other._check_xor
        else:
            counts, keys, checks = other.snapshot()
            other_counts = _np.asarray(counts, dtype=_np.int64)
            other_keys = _np.asarray(keys, dtype=_np.uint64)
            other_checks = _np.asarray(checks, dtype=_np.uint64)
        if sign == 1:
            self._counts += other_counts
        else:
            self._counts -= other_counts
        self._key_xor ^= other_keys
        self._check_xor ^= other_checks

    def peel_rounds(self, checksum, family):
        counts, key_xor, check_xor = self._counts, self._key_xor, self._check_xor
        num_hashes = family.num_hashes
        positive: list[int] = []
        negative: list[int] = []
        for _ in range(max_peel_rounds(self.num_cells)):
            candidates = _np.nonzero((counts == 1) | (counts == -1))[0]
            if candidates.size == 0:
                break
            keys = key_xor[candidates]
            checks = checksum.of_keys_array(keys)
            verified = check_xor[candidates] == checks
            keys = keys[verified]
            if keys.size == 0:
                break
            signs = counts[candidates][verified]
            # First cell in ascending order wins for a key pure in several
            # cells: np.unique returns first-occurrence indices and the
            # candidate scan is already in cell order.
            unique_keys, first = _np.unique(keys, return_index=True)
            chosen_signs = signs[first]
            positive.extend(unique_keys[chosen_signs == 1].tolist())
            negative.extend(unique_keys[chosen_signs == -1].tolist())
            cells = family.cells_for_array(unique_keys).reshape(-1)
            _np.add.at(counts, cells, _np.tile(-chosen_signs, num_hashes))
            _np.bitwise_xor.at(key_xor, cells, _np.tile(unique_keys, num_hashes))
            _np.bitwise_xor.at(
                check_xor, cells, _np.tile(checks[verified][first], num_hashes)
            )
        return positive, negative

    def dense_cells(self):
        """The live ``(counts, key_xor, check_xor)`` arrays (not copies).

        Lets same-parameter batch layers (:mod:`repro.iblt.multi`) stack many
        stores into one tensor without a round trip through Python lists.
        Callers must not mutate the arrays.
        """
        return self._counts, self._key_xor, self._check_xor

    def is_empty(self):
        return not (
            self._counts.any() or self._key_xor.any() or self._check_xor.any()
        )

    def pure_cells(self, checksum):
        counts = self._counts
        candidates = _np.nonzero((counts == 1) | (counts == -1))[0]
        if candidates.size == 0:
            return [], []
        keys = self._key_xor[candidates]
        verified = self._check_xor[candidates] == checksum.of_keys_array(keys)
        return keys[verified].tolist(), counts[candidates][verified].tolist()

    def snapshot(self):
        return self._counts.tolist(), self._key_xor.tolist(), self._check_xor.tolist()

    def load(self, counts, key_xors, check_xors):
        self._counts = _np.asarray(counts, dtype=_np.int64)
        self._key_xor = _np.asarray(key_xors, dtype=_np.uint64)
        self._check_xor = _np.asarray(check_xors, dtype=_np.uint64)

    def copy(self):
        clone = NumpyCellStore.__new__(NumpyCellStore)
        clone.num_cells = self.num_cells
        clone._counts = self._counts.copy()
        clone._key_xor = self._key_xor.copy()
        clone._check_xor = self._check_xor.copy()
        return clone
