"""Exception hierarchy for the ``repro`` library.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class.  Protocol failures that the paper treats as probabilistic
events (e.g. an IBLT that does not peel) are represented either by exceptions
(for programming misuse) or by explicit ``success`` flags on result objects
(for expected probabilistic failure); see the individual protocol modules.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class DecodeError(ReproError):
    """Raised when a data structure cannot be decoded (e.g. IBLT peeling fails).

    Protocols that can recover from a decode failure (for example by doubling
    the difference bound, Corollary 3.6) catch this internally; it only
    propagates to callers of the low-level data structure APIs.
    """


class ChecksumError(DecodeError):
    """Raised when a checksum mismatch is detected during decoding."""


class ReconciliationError(ReproError):
    """Raised when a reconciliation protocol cannot produce a result at all.

    Note that most protocols report probabilistic failure through the
    ``success`` field of their result object instead of raising.
    """


class ParameterError(ReproError, ValueError):
    """Raised when a caller supplies invalid or inconsistent parameters."""


class ServiceError(ReproError):
    """Raised when the reconciliation service cannot run a session at all
    (failed hello negotiation, unsupported protocol, malformed control frame).

    Transport-level failures inside an accepted session raise
    :class:`ReconciliationError` like every other transport."""


class SessionRejectedError(ServiceError, ReconciliationError):
    """Raised when the service *sheds* a session at admission time (a
    per-client rate limit or the in-flight-session cap), before any protocol
    work started.

    Subclasses both :class:`ServiceError` (the refusal travelled in a
    hello/ack control frame) and :class:`ReconciliationError` (the
    reconciliation did not run), so existing handlers for either taxonomy
    keep working; ``code`` carries the machine-readable rejection reason
    (see :mod:`repro.service.admission`).  Unlike other refusals this one is
    retryable by construction: the same hello may be admitted once load
    drops or the client's token bucket refills.
    """

    def __init__(self, message: str, code: str = "rejected") -> None:
        super().__init__(message)
        self.code = code


class CapacityError(ReproError):
    """Raised when a fixed-capacity structure would overflow (e.g. a key wider
    than the IBLT's configured key width)."""


class ClusterError(ReproError):
    """Raised when a replicated-KV cluster operation cannot proceed at all
    (fingerprint collision between distinct records, a session config whose
    seed disagrees with the replica's fingerprint seed, corrupt record
    journal interior, gossip with an unknown peer).

    Probabilistic per-round failures (an undersized sketch that does not
    peel) are *not* errors: the gossip driver retries with a larger bound
    and accounts the spent bits, mirroring the repeated-doubling protocols.
    """


class StoreError(ReproError):
    """Raised when the sketch store cannot apply, persist, or recover a
    sketch (corrupt journal interior, mutation that poisons the live
    sketches, durability requested on an in-memory store).

    A snapshot or journal that merely disagrees with the requesting
    configuration is *not* an error: it is treated as a cache miss and
    counted as an invalidation."""
