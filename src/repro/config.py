"""Library-wide configuration: the pluggable backend registries.

Two seams are configured here, both instances of the same registry pattern:

* **Cell-store backends** -- every IBLT stores its cells through a
  :class:`~repro.iblt.backends.CellStore` backend.
* **Field kernels** -- every GF(p) hot path (characteristic-polynomial
  evaluation, Gaussian elimination, polynomial products and root finding)
  runs through a :class:`~repro.field.kernels.FieldKernel`.

Implementations register themselves here (keyed by name) and callers pick
one in three ways, in decreasing precedence:

1. explicitly, via the ``backend=`` / ``field_kernel=`` keywords threaded
   through the protocol entry points;
2. process-wide, via :func:`set_default_cell_backend` /
   :func:`set_default_field_kernel` or the ``REPRO_CELL_BACKEND`` /
   ``REPRO_FIELD_KERNEL`` environment variables;
3. automatically (``"auto"``): the highest-priority implementation that is
   both importable and able to represent the parameters.

Selection is *graceful*: an implementation that is unavailable (numba or
NumPy not installed) or that cannot represent the parameters (keys wider
than 64 bits, field moduli at or above ``2**31``) silently falls back down
the priority chain -- the compiled numba tier to the vectorized NumPy tier
to the pure-Python reference implementation -- so callers never need to
special-case missing accelerators, wide keys or large moduli.  Registration
is open -- future backends (sharded, async, Cython, GPU) plug in with
:func:`register_cell_backend` / :func:`register_field_kernel` and a
``priority``.
"""

from __future__ import annotations

import functools
import os
from typing import TYPE_CHECKING, Any, Generic, TypeVar

from repro.errors import ParameterError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.field.kernels import FieldKernel
    from repro.iblt.backends import CellStore

#: Environment variable consulted when no explicit or process-wide default is set.
BACKEND_ENV_VAR = "REPRO_CELL_BACKEND"

#: Environment variable selecting the default GF(p) field kernel.
FIELD_KERNEL_ENV_VAR = "REPRO_FIELD_KERNEL"

#: Sentinel name meaning "pick the best available backend for these parameters".
AUTO_BACKEND = "auto"

_BackendClass = TypeVar("_BackendClass")


class _Registry(Generic[_BackendClass]):
    """Shared name -> class registry with default and graceful resolution.

    Registered classes expose ``name``, ``priority``, ``available()`` and
    ``supports(key)``; ``kind`` only labels error messages.  Both seams
    (cell stores, field kernels) are instances of this one implementation,
    so their selection semantics cannot drift apart.
    """

    def __init__(self, kind: str, env_var: str) -> None:
        self.kind = kind
        self.env_var = env_var
        self.classes: dict[str, type] = {}
        self.default: str | None = None

    def register(self, cls: type) -> type:
        name = cls.name
        if not name or name == AUTO_BACKEND:
            raise ParameterError(f"invalid {self.kind} name {name!r}")
        self.classes[name] = cls
        return cls

    def names(self) -> list[str]:
        return sorted(self.classes)

    def available(self) -> list[str]:
        return sorted(name for name, cls in self.classes.items() if cls.available())

    def lookup(self, name: str) -> type:
        try:
            return self.classes[name]
        except KeyError:
            raise ParameterError(
                f"unknown {self.kind} {name!r}; registered: {self.names()}"
            ) from None

    def set_default(self, name: str | None) -> None:
        if name is not None and name != AUTO_BACKEND:
            self.lookup(name)  # validate eagerly
        self.default = name

    def effective_default(self) -> str:
        if self.default is not None:
            return self.default
        return os.environ.get(self.env_var) or AUTO_BACKEND

    def resolve(self, name: str | None, key: Any) -> type:
        """Resolve a request to a concrete class able to handle ``key``.

        ``name=None`` means "use the process default".  Unknown names raise
        :class:`~repro.errors.ParameterError`; known-but-unusable choices
        (missing dependency, unsupported parameters) fall back to the
        highest-priority registered class that does work.
        """
        requested = name if name is not None else self.effective_default()
        if requested != AUTO_BACKEND:
            cls = self.lookup(requested)
            if cls.available() and cls.supports(key):
                return cls
        candidates = sorted(
            (
                cls
                for cls in self.classes.values()
                if cls.available() and cls.supports(key)
            ),
            key=lambda cls: cls.priority,
            reverse=True,
        )
        if not candidates:  # pragma: no cover - reference classes always qualify
            raise ParameterError(f"no registered {self.kind} supports these parameters")
        return candidates[0]


_cell_registry: _Registry = _Registry("cell backend", BACKEND_ENV_VAR)
_kernel_registry: _Registry = _Registry("field kernel", FIELD_KERNEL_ENV_VAR)


# ---------------------------------------------------------------------------
# Cell-store backends
# ---------------------------------------------------------------------------


def register_cell_backend(cls: type["CellStore"]) -> type["CellStore"]:
    """Register a cell-store backend class under ``cls.name`` (decorator-friendly)."""
    return _cell_registry.register(cls)


def cell_backend_names() -> list[str]:
    """Names of all registered backends (available or not)."""
    return _cell_registry.names()


def available_cell_backends() -> list[str]:
    """Names of registered backends whose dependencies are importable."""
    return _cell_registry.available()


def cell_backend_class(name: str) -> type["CellStore"]:
    """Look up a registered backend class by name."""
    return _cell_registry.lookup(name)


def set_default_cell_backend(name: str | None) -> None:
    """Set (or with ``None`` clear) the process-wide default backend."""
    _cell_registry.set_default(name)


def default_cell_backend() -> str:
    """The effective default backend name (may be :data:`AUTO_BACKEND`)."""
    return _cell_registry.effective_default()


def resolve_cell_backend(name: str | None, params: Any) -> type["CellStore"]:
    """Resolve a backend request to a concrete class for ``params``.

    ``name=None`` means "use the process default".  Unknown names raise
    :class:`~repro.errors.ParameterError`; known-but-unusable backends
    (missing dependency, unsupported parameters) fall back to the
    highest-priority backend that does work, so wide-key tables degrade to
    the pure-Python reference implementation transparently.
    """
    return _cell_registry.resolve(name, params)


# ---------------------------------------------------------------------------
# Field kernels
# ---------------------------------------------------------------------------


def register_field_kernel(cls: type["FieldKernel"]) -> type["FieldKernel"]:
    """Register a field-kernel class under ``cls.name`` (decorator-friendly)."""
    registered = _kernel_registry.register(cls)
    _resolve_field_kernel_cached.cache_clear()
    return registered


def field_kernel_names() -> list[str]:
    """Names of all registered field kernels (available or not)."""
    return _kernel_registry.names()


def available_field_kernels() -> list[str]:
    """Names of registered field kernels whose dependencies are importable."""
    return _kernel_registry.available()


def field_kernel_class(name: str) -> type["FieldKernel"]:
    """Look up a registered field-kernel class by name."""
    return _kernel_registry.lookup(name)


def set_default_field_kernel(name: str | None) -> None:
    """Set (or with ``None`` clear) the process-wide default field kernel."""
    _kernel_registry.set_default(name)


def default_field_kernel() -> str:
    """The effective default field-kernel name (may be :data:`AUTO_BACKEND`)."""
    return _kernel_registry.effective_default()


@functools.lru_cache(maxsize=4096)
def _resolve_field_kernel_cached(requested: str, modulus: int) -> type["FieldKernel"]:
    return _kernel_registry.resolve(requested, modulus)


def resolve_field_kernel(name: str | None, modulus: int) -> type["FieldKernel"]:
    """Resolve a field-kernel request to a concrete class for ``modulus``.

    Same semantics as :func:`resolve_cell_backend` (protocols over very
    large universes degrade to the pure-Python reference kernel
    transparently), but memoized on ``(name, modulus)`` because the
    multiround protocol resolves a kernel once per (tiny) CPI exchange.
    """
    requested = name if name is not None else default_field_kernel()
    return _resolve_field_kernel_cached(requested, modulus)
