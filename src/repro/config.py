"""Library-wide configuration: the pluggable cell-store backend registry.

Every IBLT stores its cells through a :class:`~repro.iblt.backends.CellStore`
backend.  Backends register themselves here (keyed by name) and callers pick
one in three ways, in decreasing precedence:

1. explicitly, via the ``backend=`` keyword accepted by :class:`~repro.iblt.
   table.IBLT` and threaded through every protocol entry point;
2. process-wide, via :func:`set_default_cell_backend` or the
   ``REPRO_CELL_BACKEND`` environment variable;
3. automatically (``"auto"``): the highest-priority backend that is both
   importable and able to represent the table's parameters.

Selection is *graceful*: a backend that is unavailable (NumPy not installed)
or that cannot represent the parameters (keys wider than 64 bits, e.g.
serialized child IBLTs used as parent-table keys) silently falls back to the
pure-Python reference backend, so callers never need to special-case wide
keys.  Registration is open -- future backends (sharded, async, GPU) plug in
with :func:`register_cell_backend` and a ``priority``.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.errors import ParameterError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.iblt.backends import CellStore

#: Environment variable consulted when no explicit or process-wide default is set.
BACKEND_ENV_VAR = "REPRO_CELL_BACKEND"

#: Sentinel name meaning "pick the best available backend for these parameters".
AUTO_BACKEND = "auto"

_registry: dict[str, type["CellStore"]] = {}
_default_backend: str | None = None


def register_cell_backend(cls: type["CellStore"]) -> type["CellStore"]:
    """Register a cell-store backend class under ``cls.name`` (decorator-friendly)."""
    name = cls.name
    if not name or name == AUTO_BACKEND:
        raise ParameterError(f"invalid backend name {name!r}")
    _registry[name] = cls
    return cls


def cell_backend_names() -> list[str]:
    """Names of all registered backends (available or not)."""
    return sorted(_registry)


def available_cell_backends() -> list[str]:
    """Names of registered backends whose dependencies are importable."""
    return sorted(name for name, cls in _registry.items() if cls.available())


def cell_backend_class(name: str) -> type["CellStore"]:
    """Look up a registered backend class by name."""
    try:
        return _registry[name]
    except KeyError:
        raise ParameterError(
            f"unknown cell backend {name!r}; registered: {cell_backend_names()}"
        ) from None


def set_default_cell_backend(name: str | None) -> None:
    """Set (or with ``None`` clear) the process-wide default backend."""
    global _default_backend
    if name is not None and name != AUTO_BACKEND:
        cell_backend_class(name)  # validate eagerly
    _default_backend = name


def default_cell_backend() -> str:
    """The effective default backend name (may be :data:`AUTO_BACKEND`)."""
    if _default_backend is not None:
        return _default_backend
    return os.environ.get(BACKEND_ENV_VAR) or AUTO_BACKEND


def resolve_cell_backend(name: str | None, params) -> type["CellStore"]:
    """Resolve a backend request to a concrete class for ``params``.

    ``name=None`` means "use the process default".  Unknown names raise
    :class:`~repro.errors.ParameterError`; known-but-unusable backends
    (missing dependency, unsupported parameters) fall back to the
    highest-priority backend that does work, so wide-key tables degrade to
    the pure-Python reference implementation transparently.
    """
    requested = name if name is not None else default_cell_backend()
    if requested != AUTO_BACKEND:
        cls = cell_backend_class(requested)
        if cls.available() and cls.supports(params):
            return cls
    candidates = sorted(
        (cls for cls in _registry.values() if cls.available() and cls.supports(params)),
        key=lambda cls: cls.priority,
        reverse=True,
    )
    if not candidates:  # pragma: no cover - python backend always qualifies
        raise ParameterError("no registered cell backend supports these parameters")
    return candidates[0]
