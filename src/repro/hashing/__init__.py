"""Seeded hashing primitives (the paper's "public coins").

Every protocol in the paper assumes Alice and Bob share random hash functions
at no communication cost (public coins, Section 2).  In this library both
parties derive identical hash functions from a shared integer ``seed``.  The
primitives here are:

* :class:`~repro.hashing.prf.SeededHasher` -- a keyed BLAKE2b based hash that
  maps arbitrary byte strings / integers to integers of a requested width.
* :class:`~repro.hashing.family.HashFamily` -- a family of independent seeded
  hashers derived from one seed, used for the k hash functions of an IBLT.
* :class:`~repro.hashing.pairwise.PairwiseHash` -- a pairwise-independent hash
  ``h(x) = (a*x + b) mod p mod m`` used where the paper explicitly asks for
  pairwise independence (child-set hashes, signatures).
* :class:`~repro.hashing.tabulation.TabulationHash` -- 3-wise independent
  tabulation hashing, used as a fast alternative key hash.
* helpers for checksums and for mapping set elements to field elements.

The IBLT inner-loop hashes (:class:`~repro.hashing.family.HashFamily` bucket
choices and :class:`~repro.hashing.checksum.Checksum` values) are built on
the 64-bit mixing core of :mod:`repro.hashing.mix` and expose matched batch
APIs (``cells_for_many`` / ``cells_for_array``, ``of_keys`` /
``of_keys_array``) so the vectorized cell-store backends can hash whole key
arrays at once while agreeing bit for bit with the scalar path.
"""

from repro.hashing.prf import SeededHasher, derive_seed, int_to_bytes, bytes_to_int
from repro.hashing.mix import HAS_NUMPY, fingerprint64, mix64
from repro.hashing.family import HashFamily
from repro.hashing.pairwise import PairwiseHash
from repro.hashing.tabulation import TabulationHash
from repro.hashing.checksum import Checksum

__all__ = [
    "SeededHasher",
    "HashFamily",
    "PairwiseHash",
    "TabulationHash",
    "Checksum",
    "derive_seed",
    "int_to_bytes",
    "bytes_to_int",
    "mix64",
    "fingerprint64",
    "HAS_NUMPY",
]
