"""Simple tabulation hashing.

Tabulation hashing splits a key into byte-sized characters and XORs together
per-character lookup tables of random words.  It is 3-wise independent and
very fast, and serves in this library as an alternative key hash for IBLT
bucket selection (the paper only needs limited independence for the IBLT hash
functions; tabulation hashing is a standard practical choice).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ParameterError
from repro.hashing.prf import SeededHasher


@dataclass
class TabulationHash:
    """Tabulation hash over fixed-width integer keys.

    Parameters
    ----------
    seed:
        Shared seed used to fill the lookup tables deterministically.
    key_bits:
        Maximum width of input keys in bits; keys are processed as
        ``ceil(key_bits / 8)`` characters of 8 bits each.
    out_bits:
        Width of the output hash value.
    """

    seed: int
    key_bits: int = 64
    out_bits: int = 64
    _tables: list[list[int]] = field(init=False, repr=False, default_factory=list)

    def __post_init__(self) -> None:
        if self.key_bits <= 0 or self.out_bits <= 0:
            raise ParameterError("key_bits and out_bits must be positive")
        num_chars = (self.key_bits + 7) // 8
        filler = SeededHasher(self.seed, self.out_bits)
        tables: list[list[int]] = []
        for char_index in range(num_chars):
            table = [
                filler.hash_int((char_index << 16) | byte_value)
                for byte_value in range(256)
            ]
            tables.append(table)
        self._tables = tables

    def __call__(self, key: int) -> int:
        if key < 0:
            raise ParameterError("TabulationHash inputs must be non-negative")
        if key.bit_length() > self.key_bits:
            raise ParameterError(
                f"key of {key.bit_length()} bits exceeds configured width "
                f"{self.key_bits}"
            )
        result = 0
        for table in self._tables:
            result ^= table[key & 0xFF]
            key >>= 8
        return result

    def hash_to_range(self, key: int, modulus: int) -> int:
        """Hash ``key`` into ``[0, modulus)``."""
        if modulus <= 0:
            raise ParameterError("modulus must be positive")
        return self(key) % modulus
