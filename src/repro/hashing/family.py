"""Families of independent seeded hash functions.

An IBLT with ``k`` hash functions needs ``k`` independent functions that both
parties agree on.  :class:`HashFamily` derives them from a single seed.  The
family also provides the *partitioned* bucket mapping recommended by the
paper ("one can use a partitioned hash table, with each hash function having
m/k cells"), which guarantees that the k cells a key maps to are distinct.

Bucket indices come from the shared 64-bit mixing core
(:mod:`repro.hashing.mix`) and are exposed in three matched forms:

* :meth:`HashFamily.cells_for` -- one key at a time (scalar reference path);
* :meth:`HashFamily.cells_for_many` -- a list of keys, one row per key;
* :meth:`HashFamily.cells_for_array` -- a NumPy ``uint64`` key array mapped
  to a ``(num_hashes, n)`` index matrix in a handful of vector operations.

All three agree exactly, which is what lets the pluggable cell-store
backends (:mod:`repro.iblt.backends`) produce bit-identical tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ParameterError
from repro.hashing.mix import HAS_NUMPY, MASK64, fingerprint64, mix64, mix64_array
from repro.hashing.prf import derive_seed

if HAS_NUMPY:
    import numpy as _np


@dataclass
class HashFamily:
    """``k`` independent hash functions mapping keys to cells of a table.

    Parameters
    ----------
    seed:
        Shared seed.
    num_hashes:
        Number of hash functions ``k``.
    num_cells:
        Total number of table cells ``m``.  The table is partitioned into
        ``k`` contiguous regions; hash function ``i`` maps into region ``i``.
    """

    seed: int
    num_hashes: int
    num_cells: int
    _seeds: list[int] = field(init=False, repr=False, default_factory=list)
    _region_bounds: list[tuple[int, int]] = field(
        init=False, repr=False, default_factory=list
    )

    def __post_init__(self) -> None:
        if self.num_hashes <= 0:
            raise ParameterError("num_hashes must be positive")
        if self.num_cells < self.num_hashes:
            raise ParameterError("num_cells must be at least num_hashes")
        self._seeds = [
            derive_seed(self.seed, "hash-family", index) & MASK64
            for index in range(self.num_hashes)
        ]
        base = self.num_cells // self.num_hashes
        remainder = self.num_cells % self.num_hashes
        bounds: list[tuple[int, int]] = []
        start = 0
        for index in range(self.num_hashes):
            size = base + (1 if index < remainder else 0)
            bounds.append((start, size))
            start += size
        self._region_bounds = bounds
        if HAS_NUMPY:
            self._np_seeds = [_np.uint64(seed) for seed in self._seeds]
            self._np_starts = [_np.int64(start) for start, _ in bounds]
            self._np_sizes = [_np.uint64(size) for _, size in bounds]

    def cells_for(self, key: int) -> list[int]:
        """Return the ``k`` distinct cell indices for ``key``.

        One cell per partition region, so the indices are always distinct.
        """
        fingerprint = fingerprint64(key)
        cells: list[int] = []
        for seed, (start, size) in zip(self._seeds, self._region_bounds):
            cells.append(start + mix64(fingerprint ^ seed) % size)
        return cells

    def cells_for_many(self, keys) -> list[list[int]]:
        """Cell indices for many keys (scalar reference path, any key width).

        Returns one row of ``k`` indices per key, matching :meth:`cells_for`.
        """
        return [self.cells_for(key) for key in keys]

    def region_of(self, cell_index: int) -> int:
        """Return which hash function's region a cell index belongs to."""
        if not 0 <= cell_index < self.num_cells:
            raise ParameterError("cell index out of range")
        for region, (start, size) in enumerate(self._region_bounds):
            if start <= cell_index < start + size:
                return region
        raise ParameterError("cell index out of range")  # pragma: no cover

    if HAS_NUMPY:

        def cells_for_array(self, keys) -> "_np.ndarray":
            """Vectorized bucket mapping for a ``uint64`` key array.

            Returns an ``(num_hashes, n)`` ``int64`` matrix whose column ``j``
            equals ``cells_for(keys[j])``.  Callers guarantee the keys fit in
            64 bits (the vectorized cell stores enforce this).
            """
            out = _np.empty((self.num_hashes, keys.shape[0]), dtype=_np.int64)
            for index in range(self.num_hashes):
                mixed = mix64_array(keys ^ self._np_seeds[index])
                out[index] = (mixed % self._np_sizes[index]).astype(_np.int64)
                out[index] += self._np_starts[index]
            return out
