"""Families of independent seeded hash functions.

An IBLT with ``k`` hash functions needs ``k`` independent functions that both
parties agree on.  :class:`HashFamily` derives them from a single seed.  The
family also provides the *partitioned* bucket mapping recommended by the
paper ("one can use a partitioned hash table, with each hash function having
m/k cells"), which guarantees that the k cells a key maps to are distinct.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ParameterError
from repro.hashing.prf import SeededHasher, derive_seed


@dataclass
class HashFamily:
    """``k`` independent hash functions mapping keys to cells of a table.

    Parameters
    ----------
    seed:
        Shared seed.
    num_hashes:
        Number of hash functions ``k``.
    num_cells:
        Total number of table cells ``m``.  The table is partitioned into
        ``k`` contiguous regions; hash function ``i`` maps into region ``i``.
    """

    seed: int
    num_hashes: int
    num_cells: int
    _hashers: list[SeededHasher] = field(init=False, repr=False, default_factory=list)
    _region_bounds: list[tuple[int, int]] = field(
        init=False, repr=False, default_factory=list
    )

    def __post_init__(self) -> None:
        if self.num_hashes <= 0:
            raise ParameterError("num_hashes must be positive")
        if self.num_cells < self.num_hashes:
            raise ParameterError("num_cells must be at least num_hashes")
        self._hashers = [
            SeededHasher(derive_seed(self.seed, "hash-family", index), 128)
            for index in range(self.num_hashes)
        ]
        base = self.num_cells // self.num_hashes
        remainder = self.num_cells % self.num_hashes
        bounds: list[tuple[int, int]] = []
        start = 0
        for index in range(self.num_hashes):
            size = base + (1 if index < remainder else 0)
            bounds.append((start, size))
            start += size
        self._region_bounds = bounds

    def cells_for(self, key: int) -> list[int]:
        """Return the ``k`` distinct cell indices for ``key``.

        One cell per partition region, so the indices are always distinct.
        """
        cells: list[int] = []
        for hasher, (start, size) in zip(self._hashers, self._region_bounds):
            cells.append(start + hasher.hash_to_range(key, size))
        return cells

    def region_of(self, cell_index: int) -> int:
        """Return which hash function's region a cell index belongs to."""
        if not 0 <= cell_index < self.num_cells:
            raise ParameterError("cell index out of range")
        for region, (start, size) in enumerate(self._region_bounds):
            if start <= cell_index < start + size:
                return region
        raise ParameterError("cell index out of range")  # pragma: no cover
