"""Keyed pseudo-random hashing shared between the two parties.

The paper's protocols operate in the public-coin model: Alice and Bob share
all random bits for free.  We realise this by deriving every hash function
from a single integer ``seed`` using keyed BLAKE2b.  The same seed always
yields the same function, across processes and platforms, which is essential
because the two "parties" in our simulations are separate objects that must
agree on every hash without communicating.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

_SEED_BYTES = 16
_MASK64 = (1 << 64) - 1


def int_to_bytes(value: int, length: int | None = None) -> bytes:
    """Encode a non-negative integer as big-endian bytes.

    When ``length`` is ``None`` the minimal number of bytes is used (at least
    one so that zero has a representation).
    """
    if value < 0:
        raise ValueError("int_to_bytes requires a non-negative integer")
    if length is None:
        length = max(1, (value.bit_length() + 7) // 8)
    return value.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Decode big-endian bytes into a non-negative integer."""
    return int.from_bytes(data, "big")


def derive_seed(seed: int, *labels: object) -> int:
    """Derive a child seed from ``seed`` and a sequence of labels.

    Protocol layers use this to hand independent randomness to sub-components
    (e.g. "the child IBLT hash functions for level 3") while still being fully
    determined by the top-level seed, mirroring the paper's practice of
    sharing a single random seed and expanding it locally.
    """
    hasher = hashlib.blake2b(digest_size=_SEED_BYTES)
    hasher.update(int_to_bytes(seed & _MASK64, 8))
    for label in labels:
        encoded = str(label).encode("utf-8")
        hasher.update(len(encoded).to_bytes(4, "big"))
        hasher.update(encoded)
    return bytes_to_int(hasher.digest())


@dataclass(frozen=True)
class SeededHasher:
    """A deterministic hash function keyed by an integer seed.

    Parameters
    ----------
    seed:
        Shared random seed (public coins).
    out_bits:
        Width of the output in bits.  Outputs are uniform integers in
        ``[0, 2**out_bits)``.
    """

    seed: int
    out_bits: int = 64

    def _digest(self, data: bytes) -> bytes:
        key = int_to_bytes(self.seed & ((1 << 128) - 1), 16)
        digest_size = max(8, (self.out_bits + 7) // 8)
        hasher = hashlib.blake2b(data, key=key, digest_size=min(64, digest_size))
        output = hasher.digest()
        while len(output) * 8 < self.out_bits:
            hasher = hashlib.blake2b(output, key=key, digest_size=64)
            output += hasher.digest()
        return output

    def hash_bytes(self, data: bytes) -> int:
        """Hash a byte string to an integer in ``[0, 2**out_bits)``."""
        return bytes_to_int(self._digest(data)) & ((1 << self.out_bits) - 1)

    def hash_int(self, value: int) -> int:
        """Hash a non-negative integer to an integer in ``[0, 2**out_bits)``."""
        return self.hash_bytes(int_to_bytes(value))

    def hash_to_range(self, value: int, modulus: int) -> int:
        """Hash an integer into ``[0, modulus)``.

        Uses a 128-bit intermediate hash so the modulo bias is negligible for
        the table sizes used in this library.
        """
        if modulus <= 0:
            raise ValueError("modulus must be positive")
        wide = SeededHasher(self.seed, 128).hash_int(value)
        return wide % modulus

    def hash_iterable(self, values) -> int:
        """Order-independent hash of an iterable of non-negative integers.

        The combined hash is the XOR of the element hashes, making it
        invariant under reordering -- handy for hashing *sets* (used for the
        whole-set verification hashes the paper attaches to protocols).
        """
        combined = 0
        for value in values:
            combined ^= self.hash_int(value)
        return combined
