"""Checksums for IBLT cells and whole-set verification hashes.

The IBLT of Section 2 stores, per cell, the XOR of a *checksum* of every key
hashed there.  The checksum must be wide enough that distinct keys do not
collide with high probability; the paper uses Theta(log u) bits.  The same
primitive doubles as the whole-set hash protocols attach to guard against
undetected checksum failures ("we often ward against checksum failures by
augmenting the set recovery process with a hash of each of the sets").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.hashing.prf import SeededHasher, derive_seed


@dataclass(frozen=True)
class Checksum:
    """A seeded fixed-width checksum function for integer keys.

    Parameters
    ----------
    seed:
        Shared seed.
    bits:
        Checksum width; 32 bits is the library default, which keeps the
        per-cell overhead modest while making collisions among the handful of
        keys in any one reconciliation negligible.
    """

    seed: int
    bits: int = 32

    def _hasher(self) -> SeededHasher:
        return SeededHasher(derive_seed(self.seed, "checksum"), self.bits)

    def of_key(self, key: int) -> int:
        """Checksum of a single key."""
        return self._hasher().hash_int(key)

    def of_set(self, values: Iterable[int]) -> int:
        """Order-independent checksum of a collection of keys (XOR-combined)."""
        return self._hasher().hash_iterable(values)
