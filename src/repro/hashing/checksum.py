"""Checksums for IBLT cells and whole-set verification hashes.

The IBLT of Section 2 stores, per cell, the XOR of a *checksum* of every key
hashed there.  The checksum must be wide enough that distinct keys do not
collide with high probability; the paper uses Theta(log u) bits.  The same
primitive doubles as the whole-set hash protocols attach to guard against
undetected checksum failures ("we often ward against checksum failures by
augmenting the set recovery process with a hash of each of the sets").

Checksums are derived from the shared 64-bit mixing core
(:mod:`repro.hashing.mix`), so they come in matched scalar and batch forms:
:meth:`Checksum.of_key` for one key, :meth:`Checksum.of_keys` for a list,
and :meth:`Checksum.of_keys_array` for a NumPy ``uint64`` array.  All three
agree bit for bit, which lets the vectorized cell-store backend verify pure
cells on whole arrays while the pure-Python backend checks one cell at a
time -- and still produce identical tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Sequence

from repro.hashing.mix import HAS_NUMPY, MASK64, fingerprint64, mix64, mix64_array
from repro.hashing.prf import derive_seed

if HAS_NUMPY:
    import numpy as _np


@dataclass(frozen=True)
class Checksum:
    """A seeded fixed-width checksum function for integer keys.

    Parameters
    ----------
    seed:
        Shared seed.
    bits:
        Checksum width; 32 bits is the library default, which keeps the
        per-cell overhead modest while making collisions among the handful of
        keys in any one reconciliation negligible.
    """

    seed: int
    bits: int = 32

    @cached_property
    def _word_seeds(self) -> tuple[int, ...]:
        """One derived 64-bit seed per output word (usually just one)."""
        num_words = max(1, (self.bits + 63) // 64)
        return tuple(
            derive_seed(self.seed, "checksum", index) & MASK64
            for index in range(num_words)
        )

    @cached_property
    def _mask(self) -> int:
        return (1 << self.bits) - 1

    def of_key(self, key: int) -> int:
        """Checksum of a single key."""
        fingerprint = fingerprint64(key)
        if self.bits <= 64:
            return mix64(fingerprint ^ self._word_seeds[0]) & self._mask
        combined = 0
        for word_seed in self._word_seeds:
            combined = (combined << 64) | mix64(fingerprint ^ word_seed)
        return combined & self._mask

    def of_keys(self, keys: Sequence[int]) -> list[int]:
        """Checksums of many keys (scalar reference path, any key width)."""
        return [self.of_key(key) for key in keys]

    def of_set(self, values: Iterable[int]) -> int:
        """Order-independent checksum of a collection of keys (XOR-combined)."""
        combined = 0
        for value in values:
            combined ^= self.of_key(value)
        return combined

    if HAS_NUMPY:

        @cached_property
        def _np_seed(self):
            return _np.uint64(self._word_seeds[0])

        @cached_property
        def _np_mask(self):
            return _np.uint64(self._mask if self.bits <= 64 else MASK64)

        def of_keys_array(self, keys) -> "_np.ndarray":
            """Vectorized checksums of a ``uint64`` key array.

            Only defined for ``bits <= 64`` (the vectorized cell stores
            guarantee this); agrees element-wise with :meth:`of_key`.
            """
            if self.bits > 64:
                raise ValueError("of_keys_array requires bits <= 64")
            return mix64_array(keys ^ self._np_seed) & self._np_mask
