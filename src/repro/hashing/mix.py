"""64-bit mixing primitives shared by the scalar and vectorized hash paths.

The IBLT inner loops (bucket choice and per-key checksums) are the hot path
of every protocol in this library.  Deriving those values from keyed BLAKE2b
one key at a time is robust but slow, and -- crucially -- impossible to
vectorize.  This module defines the mixing function both paths use instead:

* :func:`mix64` -- the splitmix64 finalizer, a bijective avalanche mixer on
  64-bit words, computed with plain Python integers;
* :func:`mix64_array` -- the *same* function on a NumPy ``uint64`` array,
  element for element identical to :func:`mix64`;
* :func:`fingerprint64` -- folds an arbitrarily wide key to the 64-bit word
  the mixers consume.  Keys that already fit in 64 bits are used as-is (so
  the scalar and vectorized paths agree without any hashing); wider keys
  (e.g. serialized child IBLTs used as parent-table keys, Section 3.2) are
  folded through BLAKE2b once per key.

Cross-backend determinism rests on this file: every cell-store backend
(:mod:`repro.iblt.backends`) derives bucket indices and checksums from these
functions, so the same seed yields bit-identical tables no matter which
backend computed them.
"""

from __future__ import annotations

import hashlib

MASK64 = (1 << 64) - 1

_MULT_A = 0xBF58476D1CE4E5B9
_MULT_B = 0x94D049BB133111EB

try:  # NumPy is optional; every caller falls back to the scalar path.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on NumPy-free installs
    _np = None

HAS_NUMPY = _np is not None


def mix64(value: int) -> int:
    """Splitmix64 finalizer: a bijective avalanche mixer on 64-bit words."""
    value &= MASK64
    value ^= value >> 30
    value = (value * _MULT_A) & MASK64
    value ^= value >> 27
    value = (value * _MULT_B) & MASK64
    return value ^ (value >> 31)


def fingerprint64(key: int) -> int:
    """Fold a non-negative key into the 64-bit word the mixers consume.

    Keys below ``2**64`` are returned unchanged, which is what makes the
    scalar and vectorized hash paths agree exactly.  Wider keys are folded
    with one BLAKE2b call (regardless of how many hash functions later
    consume the fingerprint, so wide-key hashing pays a single digest).
    """
    if key >> 64 == 0:
        return key
    data = key.to_bytes((key.bit_length() + 7) // 8, "big")
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8, person=b"repro-fp64").digest(), "big"
    )


if HAS_NUMPY:
    _NP_MULT_A = _np.uint64(_MULT_A)
    _NP_MULT_B = _np.uint64(_MULT_B)
    _NP_S30 = _np.uint64(30)
    _NP_S27 = _np.uint64(27)
    _NP_S31 = _np.uint64(31)

    def mix64_array(values):
        """Vectorized :func:`mix64` over a ``uint64`` array (input not modified)."""
        z = values.astype(_np.uint64, copy=True)
        z ^= z >> _NP_S30
        z *= _NP_MULT_A
        z ^= z >> _NP_S27
        z *= _NP_MULT_B
        z ^= z >> _NP_S31
        return z

else:  # pragma: no cover - exercised on NumPy-free installs

    def mix64_array(values):
        raise RuntimeError("mix64_array requires NumPy")
