"""Pairwise-independent hash functions.

The paper repeatedly asks for ``O(log s)``-bit *pairwise independent* hashes
(child-set hashes in Algorithm 1, vertex signatures in Section 6).  The
classic construction ``h(x) = ((a*x + b) mod p) mod m`` with ``a, b`` drawn
uniformly from a prime field is pairwise independent; we draw ``a`` and ``b``
deterministically from the shared seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ParameterError
from repro.hashing.prf import SeededHasher

#: A Mersenne prime comfortably larger than any 64-bit input; arithmetic mod
#: this prime is exact with Python integers.
_DEFAULT_PRIME = (1 << 89) - 1


@dataclass(frozen=True)
class PairwiseHash:
    """``h(x) = ((a*x + b) mod p) mod out_range`` with seeded coefficients.

    Parameters
    ----------
    seed:
        Shared seed from which ``a`` (nonzero) and ``b`` are derived.
    out_range:
        Size of the output range; outputs lie in ``[0, out_range)``.
    prime:
        Field prime; must exceed both the largest input and ``out_range``.
        Defaults to a 89-bit Mersenne prime suitable for 64-bit inputs.
    """

    seed: int
    out_range: int
    prime: int = _DEFAULT_PRIME
    _a: int = field(init=False, repr=False, default=0)
    _b: int = field(init=False, repr=False, default=0)

    def __post_init__(self) -> None:
        if self.out_range <= 0:
            raise ParameterError("out_range must be positive")
        if self.prime <= self.out_range:
            raise ParameterError("prime must exceed out_range")
        coeff_source = SeededHasher(self.seed, 128)
        a = coeff_source.hash_int(1) % (self.prime - 1) + 1
        b = coeff_source.hash_int(2) % self.prime
        object.__setattr__(self, "_a", a)
        object.__setattr__(self, "_b", b)

    @property
    def out_bits(self) -> int:
        """Number of bits needed to represent an output value."""
        return max(1, (self.out_range - 1).bit_length())

    def __call__(self, value: int) -> int:
        if value < 0:
            raise ParameterError("PairwiseHash inputs must be non-negative")
        return ((self._a * value + self._b) % self.prime) % self.out_range
