"""Synthetic workload generators for tests, examples and benchmarks.

The paper has no datasets; every experiment runs on synthetic inputs with a
*planted*, exactly-known difference, so measured communication can be related
to the true ``d``.  Generators:

* :mod:`repro.workloads.sets_of_sets` -- random parent sets and controlled
  perturbations; includes the dense "binary database" regime of Table 1.
* :mod:`repro.workloads.forests` -- random shallow rooted forests and the
  paper's edge-edit model.
* :mod:`repro.workloads.database` -- random binary tables with bit flips.
* :mod:`repro.workloads.documents` -- synthetic corpora with edited /
  fresh documents.

Graph workloads live in :mod:`repro.graphs.random_graphs` (G(n, p),
perturbations and the planted-separation variant).
"""

from repro.workloads.sets_of_sets import (
    SetsOfSetsInstance,
    random_sets_of_sets,
    perturb_sets_of_sets,
    sets_of_sets_instance,
    table1_instance,
)
from repro.workloads.forests import random_forest, perturb_forest, forest_instance
from repro.workloads.database import random_binary_table, flipped_table_pair
from repro.workloads.documents import synthetic_corpus, edited_corpus_pair

__all__ = [
    "SetsOfSetsInstance",
    "random_sets_of_sets",
    "perturb_sets_of_sets",
    "sets_of_sets_instance",
    "table1_instance",
    "random_forest",
    "perturb_forest",
    "forest_instance",
    "random_binary_table",
    "flipped_table_pair",
    "synthetic_corpus",
    "edited_corpus_pair",
]
