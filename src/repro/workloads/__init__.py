"""Synthetic workload generators for tests, examples and benchmarks.

The paper has no datasets; every experiment runs on synthetic inputs with a
*planted*, exactly-known difference, so measured communication can be related
to the true ``d``.  Generators:

* :mod:`repro.workloads.sets_of_sets` -- random parent sets and controlled
  perturbations; includes the dense "binary database" regime of Table 1.
* :mod:`repro.workloads.forests` -- random shallow rooted forests and the
  paper's edge-edit model.
* :mod:`repro.workloads.database` -- random binary tables with bit flips.
* :mod:`repro.workloads.documents` -- synthetic corpora with edited /
  fresh documents.
* :mod:`repro.workloads.cluster` -- planted per-node write deltas and
  churn schedules for the replicated-KV gossip cluster.
* :mod:`repro.graphs.random_graphs` -- G(n, p) graphs, perturbations and
  the planted-separation variant (re-exported here so one import surface
  covers every generator).
"""

from repro.graphs.random_graphs import (
    ReconciliationPair,
    gnp_random_graph,
    perturb_edges,
    planted_separated_graph,
    reconciliation_pair,
)
from repro.workloads.cluster import churn_writes, planted_cluster_writes
from repro.workloads.database import flipped_table_pair, random_binary_table
from repro.workloads.documents import edited_corpus_pair, synthetic_corpus
from repro.workloads.forests import forest_instance, perturb_forest, random_forest
from repro.workloads.sets_of_sets import (
    SetsOfSetsInstance,
    perturb_sets_of_sets,
    random_sets_of_sets,
    sets_of_sets_instance,
    table1_instance,
)

__all__ = [
    "ReconciliationPair",
    "SetsOfSetsInstance",
    "churn_writes",
    "edited_corpus_pair",
    "flipped_table_pair",
    "forest_instance",
    "gnp_random_graph",
    "perturb_edges",
    "perturb_forest",
    "perturb_sets_of_sets",
    "planted_cluster_writes",
    "planted_separated_graph",
    "random_binary_table",
    "random_forest",
    "random_sets_of_sets",
    "reconciliation_pair",
    "sets_of_sets_instance",
    "synthetic_corpus",
    "table1_instance",
]
