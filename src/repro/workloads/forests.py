"""Random rooted forests and the paper's edge-edit model (Section 6)."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ParameterError
from repro.graphs.forest import RootedForest


def random_forest(
    num_vertices: int,
    seed: int,
    *,
    max_depth: int = 6,
    root_probability: float = 0.1,
) -> RootedForest:
    """A random rooted forest with bounded depth.

    Vertices are added one at a time; each new vertex becomes a root with
    probability ``root_probability`` and otherwise attaches to a uniformly
    random earlier vertex whose depth is below ``max_depth``.
    """
    if num_vertices <= 0:
        raise ParameterError("num_vertices must be positive")
    if max_depth < 1:
        raise ParameterError("max_depth must be at least 1")
    rng = random.Random(seed)
    parents: list[int | None] = [None]
    depths = [0]
    for vertex in range(1, num_vertices):
        eligible = [v for v in range(vertex) if depths[v] < max_depth]
        if not eligible or rng.random() < root_probability:
            parents.append(None)
            depths.append(0)
        else:
            parent = rng.choice(eligible)
            parents.append(parent)
            depths.append(depths[parent] + 1)
    return RootedForest(parents)


def perturb_forest(
    forest: RootedForest, num_edits: int, seed: int
) -> tuple[RootedForest, int]:
    """Apply up to ``num_edits`` edge insertions/deletions preserving forest-ness.

    Deletions detach a random non-root vertex (it becomes a root); insertions
    attach a random root under a random non-descendant vertex.  Returns the
    edited forest and the number of edits actually applied.
    """
    if num_edits < 0:
        raise ParameterError("num_edits must be non-negative")
    rng = random.Random(seed)
    edited = forest.copy()
    applied = 0
    for _ in range(num_edits):
        non_roots = [v for v in range(edited.num_vertices) if edited.parent(v) is not None]
        roots = edited.roots()
        do_delete = non_roots and (not roots or len(roots) < 2 or rng.random() < 0.5)
        if do_delete and non_roots:
            edited.delete_edge(rng.choice(non_roots))
            applied += 1
            continue
        if len(roots) >= 2:
            child = rng.choice(roots)
            # Pick a parent that is not in child's subtree (any vertex whose
            # root is different works; a root has itself as subtree root).
            candidates = [
                v
                for v in range(edited.num_vertices)
                if v != child and not _is_descendant(edited, v, child)
            ]
            if candidates:
                edited.insert_edge(rng.choice(candidates), child)
                applied += 1
    return edited, applied


def _is_descendant(forest: RootedForest, vertex: int, ancestor: int) -> bool:
    """True if ``vertex`` lies in the subtree rooted at ``ancestor``."""
    current: int | None = vertex
    while current is not None:
        if current == ancestor:
            return True
        current = forest.parent(current)
    return False


@dataclass(frozen=True)
class ForestInstance:
    """A generated forest reconciliation instance."""

    alice: RootedForest
    bob: RootedForest
    num_edits: int
    max_depth: int


def forest_instance(
    num_vertices: int,
    num_edits: int,
    seed: int,
    *,
    max_depth: int = 6,
    root_probability: float = 0.1,
) -> ForestInstance:
    """Generate Alice's forest and Bob's edited copy."""
    alice = random_forest(
        num_vertices, seed, max_depth=max_depth, root_probability=root_probability
    )
    bob, applied = perturb_forest(alice, num_edits, seed + 1)
    return ForestInstance(alice, bob, applied, max(alice.max_depth, bob.max_depth))
