"""Random binary tables with planted bit flips."""

from __future__ import annotations

import random

from repro.db.table import BinaryTable
from repro.errors import ParameterError


def random_binary_table(
    num_rows: int, num_columns: int, density: float, seed: int
) -> BinaryTable:
    """A table of ``num_rows`` distinct random binary rows.

    Each cell is 1 with probability ``density``; duplicate rows are redrawn so
    the table genuinely has ``num_rows`` rows.
    """
    if not 0.0 < density < 1.0:
        raise ParameterError("density must lie strictly between 0 and 1")
    if num_rows <= 0 or num_columns <= 0:
        raise ParameterError("num_rows and num_columns must be positive")
    rng = random.Random(seed)
    columns = [f"c{i}" for i in range(num_columns)]
    rows: set[frozenset[int]] = set()
    guard = 0
    while len(rows) < num_rows:
        guard += 1
        if guard > 100 * num_rows:
            raise ParameterError("could not generate enough distinct rows")
        row = frozenset(
            column for column in range(num_columns) if rng.random() < density
        )
        rows.add(row)
    return BinaryTable(columns, rows)


def flipped_table_pair(
    num_rows: int,
    num_columns: int,
    density: float,
    num_flips: int,
    seed: int,
    *,
    max_rows_touched: int | None = None,
) -> tuple[BinaryTable, BinaryTable, int]:
    """Alice's table plus Bob's copy with ``num_flips`` random bit flips.

    Returns ``(alice, bob, flips_applied)``.  Flips are spread over at most
    ``max_rows_touched`` rows when given.
    """
    alice = random_binary_table(num_rows, num_columns, density, seed)
    rng = random.Random(seed + 1)
    bob_rows = [set(row) for row in sorted(alice.rows(), key=sorted)]
    limit = len(bob_rows) if max_rows_touched is None else min(max_rows_touched, len(bob_rows))
    touched_indices = rng.sample(range(len(bob_rows)), limit)
    applied = 0
    guard = 0
    while applied < num_flips and guard < 100 * (num_flips + 1):
        guard += 1
        row = bob_rows[rng.choice(touched_indices)]
        column = rng.randrange(num_columns)
        if column in row:
            row.discard(column)
        else:
            row.add(column)
        applied += 1
    bob = BinaryTable(alice.columns, bob_rows)
    if bob.num_rows != alice.num_rows:
        return flipped_table_pair(
            num_rows,
            num_columns,
            density,
            num_flips,
            seed + 7,
            max_rows_touched=max_rows_touched,
        )
    return alice, bob, applied
