"""Random sets-of-sets instances with planted differences."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.setsofsets import SetOfSets
from repro.errors import ParameterError


@dataclass(frozen=True)
class SetsOfSetsInstance:
    """A generated reconciliation instance.

    Attributes
    ----------
    alice, bob:
        The two parent sets.
    universe_size, max_child_size:
        The shared parameters ``u`` and ``h`` (``max_child_size`` is an upper
        bound valid for both sides, including after perturbation).
    planted_difference:
        The exact number of element changes applied to turn Alice's parent
        into Bob's (the paper's ``d`` for this instance).
    differing_children:
        Number of child sets touched by the perturbation (a lower bound on
        the paper's ``d_hat``).
    """

    alice: SetOfSets
    bob: SetOfSets
    universe_size: int
    max_child_size: int
    planted_difference: int
    differing_children: int


def random_sets_of_sets(
    num_children: int,
    child_size: int,
    universe_size: int,
    seed: int,
    *,
    child_size_jitter: int = 0,
) -> SetOfSets:
    """A parent set of ``num_children`` random child sets.

    Child sets are sampled without replacement from ``[0, universe_size)``;
    ``child_size_jitter`` adds a uniform ±jitter to each child's size.
    Children are re-drawn on the (unlikely) event of a duplicate so the
    parent really has ``num_children`` distinct children.
    """
    if child_size <= 0 or child_size + child_size_jitter > universe_size:
        raise ParameterError("child_size (plus jitter) must lie in (0, universe_size]")
    rng = random.Random(seed)
    children: set[frozenset[int]] = set()
    while len(children) < num_children:
        size = child_size + (
            rng.randint(-child_size_jitter, child_size_jitter) if child_size_jitter else 0
        )
        size = max(1, min(universe_size, size))
        children.add(frozenset(rng.sample(range(universe_size), size)))
    return SetOfSets(children)


def perturb_sets_of_sets(
    parent: SetOfSets,
    num_changes: int,
    universe_size: int,
    seed: int,
    *,
    max_children_touched: int | None = None,
) -> tuple[SetOfSets, int, int]:
    """Apply exactly ``num_changes`` element insertions/deletions to ``parent``.

    Changes are spread over at most ``max_children_touched`` child sets
    (default: no limit beyond the child count).  Returns ``(perturbed,
    actual_changes, children_touched)``; the actual change count can fall
    slightly short only when the universe is too small to keep children
    distinct, which the generator avoids by construction.
    """
    if num_changes < 0:
        raise ParameterError("num_changes must be non-negative")
    rng = random.Random(seed)
    children = [set(child) for child in parent.sorted_children()]
    if not children:
        raise ParameterError("cannot perturb an empty parent set")
    limit = len(children) if max_children_touched is None else min(
        max_children_touched, len(children)
    )
    touched_indices = rng.sample(range(len(children)), limit)
    applied = 0
    touched: set[int] = set()
    guard = 0
    while applied < num_changes and guard < 50 * (num_changes + 1):
        guard += 1
        index = rng.choice(touched_indices)
        child = children[index]
        if child and rng.random() < 0.5:
            child.discard(rng.choice(sorted(child)))
        else:
            candidate = rng.randrange(universe_size)
            if candidate in child:
                continue
            child.add(candidate)
        applied += 1
        touched.add(index)
    perturbed = SetOfSets(children)
    if perturbed.num_children != parent.num_children:
        # A perturbation collapsed two children into one (extremely unlikely
        # with random universes); retry with a different seed offset.
        return perturb_sets_of_sets(
            parent,
            num_changes,
            universe_size,
            seed + 1,
            max_children_touched=max_children_touched,
        )
    return perturbed, applied, len(touched)


def sets_of_sets_instance(
    num_children: int,
    child_size: int,
    universe_size: int,
    num_changes: int,
    seed: int,
    *,
    max_children_touched: int | None = None,
    child_size_jitter: int = 0,
) -> SetsOfSetsInstance:
    """Generate a full reconciliation instance (Alice plus perturbed Bob)."""
    alice = random_sets_of_sets(
        num_children, child_size, universe_size, seed, child_size_jitter=child_size_jitter
    )
    bob, applied, touched = perturb_sets_of_sets(
        alice,
        num_changes,
        universe_size,
        seed + 1,
        max_children_touched=max_children_touched,
    )
    max_child = max(alice.max_child_size, bob.max_child_size)
    return SetsOfSetsInstance(alice, bob, universe_size, max_child, applied, touched)


def table1_instance(
    universe_size: int,
    num_children: int,
    num_changes: int,
    seed: int,
    *,
    density: float = 0.5,
    max_children_touched: int | None = None,
) -> SetsOfSetsInstance:
    """The Table 1 regime: dense binary-database rows (``h = Theta(u)``).

    Each child set contains about ``density * universe_size`` elements, so
    ``h = Theta(u)`` and ``n = Theta(s u)`` exactly as in the paper's
    comparison table; ``num_changes`` is kept small relative to ``s`` and
    ``h``.
    """
    child_size = max(1, int(round(density * universe_size)))
    return sets_of_sets_instance(
        num_children,
        child_size,
        universe_size,
        num_changes,
        seed,
        max_children_touched=max_children_touched,
        child_size_jitter=max(1, child_size // 10),
    )
