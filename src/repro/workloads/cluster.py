"""Planted write/churn workloads for the replicated-KV cluster scenario.

The cluster benchmark and tests need the same thing the set-reconciliation
workloads provide: instances whose *true* difference is planted and known.
Here the planted quantity is per-replica unsynced writes -- each node holds
the shared keyspace plus its own delta, so the pairwise difference any
gossip round reconciles is exactly the two nodes' delta sizes.

Generators:

* :func:`planted_cluster_writes` -- a converged shared keyspace plus a
  disjoint per-node batch of fresh writes (the benchmark's delta model);
* :func:`churn_writes` -- an ongoing-churn schedule: per round, seeded
  writes that mix fresh keys with overwrites of shared ones, modelling the
  conflicting-writers regime LWW merge has to resolve deterministically.
"""

from __future__ import annotations

import random

from repro.cluster.records import KVRecord
from repro.errors import ParameterError

#: The writer id the shared (pre-converged) records carry.
SHARED_WRITER = 0


def planted_cluster_writes(
    num_nodes: int,
    shared_keys: int,
    writes_per_node: int,
    *,
    seed: int = 0,
    value_length: int = 16,
) -> tuple[list[KVRecord], list[list[tuple[str, str]]]]:
    """A shared keyspace plus one disjoint delta of fresh writes per node.

    Returns ``(shared_records, per_node_writes)``: merge ``shared_records``
    into every replica first (the converged prefix), then apply node ``i``'s
    ``per_node_writes[i]`` as local puts.  Keys are disjoint across nodes,
    so the planted pairwise difference between nodes ``i`` and ``j`` is
    exactly ``len(per_node_writes[i]) + len(per_node_writes[j])``.
    """
    if num_nodes < 1:
        raise ParameterError("num_nodes must be positive")
    if shared_keys < 0 or writes_per_node < 0:
        raise ParameterError("shared_keys and writes_per_node must be non-negative")
    rng = random.Random(seed)
    shared = [
        KVRecord(
            key=f"shared:{index}",
            version=index + 1,
            writer=SHARED_WRITER,
            value=_random_value(rng, value_length),
        )
        for index in range(shared_keys)
    ]
    per_node = [
        [
            (f"node{node}:delta:{write}", _random_value(rng, value_length))
            for write in range(writes_per_node)
        ]
        for node in range(num_nodes)
    ]
    return shared, per_node


def churn_writes(
    num_nodes: int,
    rounds: int,
    writes_per_round: int,
    *,
    seed: int = 0,
    shared_keys: int = 0,
    overwrite_fraction: float = 0.5,
    value_length: int = 16,
) -> list[list[tuple[int, str, str]]]:
    """Per-round churn: each entry is ``(node_index, key, value)`` writes.

    A ``overwrite_fraction`` share of each round's writes hits the shared
    ``shared:<i>`` keyspace (concurrent writers racing on the same keys,
    resolved by LWW merge); the rest land on fresh per-round keys.
    """
    if num_nodes < 1:
        raise ParameterError("num_nodes must be positive")
    if rounds < 0 or writes_per_round < 0:
        raise ParameterError("rounds and writes_per_round must be non-negative")
    if not 0.0 <= overwrite_fraction <= 1.0:
        raise ParameterError("overwrite_fraction must be within [0, 1]")
    rng = random.Random(seed)
    schedule: list[list[tuple[int, str, str]]] = []
    for round_index in range(rounds):
        batch: list[tuple[int, str, str]] = []
        for write in range(writes_per_round):
            node = rng.randrange(num_nodes)
            if shared_keys and rng.random() < overwrite_fraction:
                key = f"shared:{rng.randrange(shared_keys)}"
            else:
                key = f"churn:{round_index}:{write}"
            batch.append((node, key, _random_value(rng, value_length)))
        schedule.append(batch)
    return schedule


def _random_value(rng: random.Random, length: int) -> str:
    return "".join(rng.choice("abcdefghijklmnopqrstuvwxyz") for _ in range(length))
