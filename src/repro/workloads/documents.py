"""Synthetic document corpora with edited and fresh documents."""

from __future__ import annotations

import random

from repro.errors import ParameterError

_VOCABULARY = [
    "data", "set", "graph", "vertex", "edge", "hash", "table", "protocol",
    "round", "message", "random", "peeling", "bloom", "filter", "degree",
    "signature", "forest", "tree", "child", "parent", "universe", "element",
    "difference", "estimate", "reconcile", "alice", "bob", "polynomial",
    "field", "cell", "checksum", "count", "stream", "document", "shingle",
    "database", "row", "column", "binary", "match", "label", "sketch",
]


def _random_sentence(rng: random.Random, num_words: int) -> str:
    return " ".join(rng.choice(_VOCABULARY) for _ in range(num_words))


def synthetic_corpus(
    num_documents: int, words_per_document: int, seed: int
) -> list[str]:
    """A corpus of random word-salad documents."""
    if num_documents <= 0 or words_per_document <= 0:
        raise ParameterError("num_documents and words_per_document must be positive")
    rng = random.Random(seed)
    return [_random_sentence(rng, words_per_document) for _ in range(num_documents)]


def edit_document(text: str, num_edits: int, rng: random.Random) -> str:
    """Replace ``num_edits`` random words of a document."""
    words = text.split()
    for _ in range(min(num_edits, len(words))):
        position = rng.randrange(len(words))
        words[position] = rng.choice(_VOCABULARY)
    return " ".join(words)


def edited_corpus_pair(
    num_documents: int,
    words_per_document: int,
    num_edited: int,
    edits_per_document: int,
    num_fresh: int,
    seed: int,
) -> tuple[list[str], list[str]]:
    """Alice's corpus and Bob's mostly-identical copy.

    Bob's copy shares most documents verbatim, has ``num_edited`` documents
    with ``edits_per_document`` word replacements each (near duplicates), and
    is missing ``num_fresh`` of Alice's documents entirely (fresh documents
    from Bob's point of view).
    """
    if num_edited + num_fresh > num_documents:
        raise ParameterError("num_edited + num_fresh cannot exceed num_documents")
    rng = random.Random(seed)
    alice = synthetic_corpus(num_documents, words_per_document, seed)
    bob = list(alice)
    indices = rng.sample(range(num_documents), num_edited + num_fresh)
    for index in indices[:num_edited]:
        bob[index] = edit_document(bob[index], edits_per_document, rng)
    fresh_indices = sorted(indices[num_edited:], reverse=True)
    for index in fresh_indices:
        del bob[index]
    return alice, bob
