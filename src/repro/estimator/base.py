"""Abstract interface for set-difference estimators.

Matches the definition in Section 3 of the paper: the structure implicitly
maintains two sets ``S1`` and ``S2`` and supports three operations --
``update(x, side)``, ``merge(other)`` and ``query()`` -- where ``query``
estimates ``|S1 xor S2|``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable

from repro.errors import ParameterError


class SetDifferenceEstimator(ABC):
    """Base class for set-difference estimators."""

    #: Sides an element can be added to, mirroring the paper's ``i in {1, 2}``.
    SIDES = (1, 2)

    @abstractmethod
    def update(self, element: int, side: int) -> None:
        """Add ``element`` to set ``S1`` (side=1) or ``S2`` (side=2)."""

    @abstractmethod
    def merge(self, other: "SetDifferenceEstimator") -> "SetDifferenceEstimator":
        """Return a new estimator representing the union of the two sketches."""

    @abstractmethod
    def query(self) -> int:
        """Return an estimate of ``|S1 xor S2|``."""

    @property
    @abstractmethod
    def size_bits(self) -> int:
        """Serialized size in bits, used for communication accounting."""

    # -- wire serialization ----------------------------------------------------------

    def write_wire(self, writer) -> None:
        """Append the transmitted state to a :class:`~repro.comm.bits.BitWriter`.

        Exactly :attr:`size_bits` bits are written -- the estimator's
        configuration (seed, shape) is shared knowledge and is *not*
        serialized, matching how protocols charge for estimator payloads.
        """
        raise NotImplementedError(f"{type(self).__name__} does not support wire serialization")

    def read_wire(self, reader) -> None:
        """Fill this (freshly constructed, empty) estimator from a
        :class:`~repro.comm.bits.BitReader` (inverse of :meth:`write_wire`)."""
        raise NotImplementedError(f"{type(self).__name__} does not support wire serialization")

    # -- convenience helpers shared by implementations ------------------------------

    def _validate_side(self, side: int) -> None:
        if side not in self.SIDES:
            raise ParameterError(f"side must be 1 or 2, got {side}")

    def update_all(self, elements: Iterable[int], side: int) -> None:
        """Add every element of an iterable to the chosen side."""
        for element in elements:
            self.update(element, side)
