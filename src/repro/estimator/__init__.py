"""Set-difference estimators (Section 3 and Appendix A of the paper).

A set-difference estimator implicitly maintains two sets ``S1`` and ``S2``
and supports ``update``, ``merge`` and ``query``; ``query`` returns an
estimate of ``|S1 xor S2|`` accurate to within a constant factor with good
probability.  Two implementations are provided:

* :class:`~repro.estimator.strata.StrataEstimator` -- the strata estimator of
  Eppstein, Goodrich, Uyeda and Varghese ("What's the Difference?", reference
  [14] of the paper), built from a hierarchy of fixed-size IBLTs.  This is
  the baseline the paper improves upon.
* :class:`~repro.estimator.l0.L0Estimator` -- the paper's improved estimator
  (Theorem 3.1 / Appendix A), built from levels of tiny mod-4 bucket counters
  in the style of streaming L0-norm estimation.  Asymptotically smaller
  (``O(log(1/delta) log n)`` bits) and faster to merge/query.
* :class:`~repro.estimator.median.MedianEstimator` -- the standard
  median-of-replicas amplification wrapper used to reach failure probability
  ``delta``.
"""

from repro.estimator.base import SetDifferenceEstimator
from repro.estimator.strata import StrataEstimator
from repro.estimator.l0 import L0Estimator
from repro.estimator.median import MedianEstimator

__all__ = [
    "SetDifferenceEstimator",
    "StrataEstimator",
    "L0Estimator",
    "MedianEstimator",
]
