"""Median-of-replicas amplification for set-difference estimators.

Both the strata and L0 estimators succeed with constant probability; the
standard way to reach failure probability ``delta`` -- and the one the paper
cites ("taking the median of O(log(1/delta)) parallel runs") -- is to run
independent replicas and report the median estimate.
"""

from __future__ import annotations

import math
import statistics
from typing import Callable

from repro.errors import ParameterError
from repro.estimator.base import SetDifferenceEstimator
from repro.estimator.l0 import L0Estimator
from repro.hashing import derive_seed


class MedianEstimator(SetDifferenceEstimator):
    """Run several independent estimators and report the median query.

    Parameters
    ----------
    seed:
        Shared seed; replica ``i`` uses ``derive_seed(seed, "replica", i)``.
    num_replicas:
        Number of parallel estimators.  Use :meth:`replicas_for_delta` to map
        a target failure probability to a replica count.
    factory:
        Callable mapping a seed to an estimator instance.  Defaults to the
        paper's improved :class:`L0Estimator`.
    """

    def __init__(
        self,
        seed: int,
        num_replicas: int = 5,
        factory: Callable[[int], SetDifferenceEstimator] | None = None,
    ) -> None:
        if num_replicas <= 0:
            raise ParameterError("num_replicas must be positive")
        if factory is None:
            factory = L0Estimator
        self.seed = seed
        self.num_replicas = num_replicas
        self._factory = factory
        self._replicas = [
            factory(derive_seed(seed, "replica", index)) for index in range(num_replicas)
        ]

    @staticmethod
    def replicas_for_delta(delta: float) -> int:
        """Number of replicas needed for failure probability ``delta``.

        Each replica errs with probability at most 1/3 (conservative), so
        ``O(log(1/delta))`` replicas suffice by a Chernoff bound; the constant
        below keeps replica counts small for the deltas used in practice.
        """
        if not 0.0 < delta < 1.0:
            raise ParameterError("delta must be in (0, 1)")
        return max(1, int(math.ceil(2.0 * math.log(1.0 / delta))) | 1)

    def update(self, element: int, side: int) -> None:
        self._validate_side(side)
        for replica in self._replicas:
            replica.update(element, side)

    def merge(self, other: "MedianEstimator") -> "MedianEstimator":
        if not isinstance(other, MedianEstimator) or other.num_replicas != self.num_replicas:
            raise ParameterError("cannot merge median estimators with different shapes")
        merged = MedianEstimator(self.seed, self.num_replicas, self._factory)
        merged._replicas = [
            mine.merge(theirs) for mine, theirs in zip(self._replicas, other._replicas)
        ]
        return merged

    def query(self) -> int:
        return int(statistics.median(replica.query() for replica in self._replicas))

    @property
    def size_bits(self) -> int:
        return sum(replica.size_bits for replica in self._replicas)

    def write_wire(self, writer) -> None:
        for replica in self._replicas:
            replica.write_wire(writer)

    def read_wire(self, reader) -> None:
        for replica in self._replicas:
            replica.read_wire(reader)
