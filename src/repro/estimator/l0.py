"""The paper's improved set-difference estimator (Theorem 3.1 / Appendix A).

The construction follows Appendix A: the universe is sampled at geometric
rates into ``O(log n)`` levels; each level keeps a constant number of tiny
counters (2-bit, i.e. mod-4) indexed by a pairwise-independent hash.  An
element of ``S1`` adds +1 to its bucket, an element of ``S2`` adds -1, so
identical elements on the two sides cancel exactly and only the symmetric
difference contributes.  A level whose number of non-zero buckets is small
counts its sampled difference (almost) exactly; the query scales the count of
the sparsest reliable level by its sampling rate.

Compared with the strata estimator this sketch stores 2-bit counters instead
of full IBLT cells, which is exactly the ``O(log u)``-factor saving the paper
claims.  (The word-RAM constant-time tricks of Appendix A -- packing the
whole sketch into O(1) machine words -- are not reproduced; Python-level
loops over the ``O(log n)`` levels are used instead.  This changes constants,
not sizes.)
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.estimator.base import SetDifferenceEstimator
from repro.hashing import PairwiseHash, SeededHasher, derive_seed


class L0Estimator(SetDifferenceEstimator):
    """L0-sketch set-difference estimator with nested geometric sampling.

    Parameters
    ----------
    seed:
        Shared seed.
    num_levels:
        Number of sampling levels.  Level ``i`` sees each differing element
        with probability ``2^{-i}`` (level 0 sees everything), so
        ``num_levels = 32`` handles differences up to billions.
    buckets_per_level:
        Number of mod-4 counters per level.  Larger values give better
        accuracy; the default of 128 keeps the sketch around 1 KiB while
        estimating within a small constant factor.
    reliable_fraction:
        A level is trusted when its non-zero bucket count is at most
        ``reliable_fraction * buckets_per_level`` (collisions are then rare).
    """

    def __init__(
        self,
        seed: int,
        num_levels: int = 32,
        buckets_per_level: int = 128,
        reliable_fraction: float = 0.25,
    ) -> None:
        if num_levels <= 0:
            raise ParameterError("num_levels must be positive")
        if buckets_per_level < 8:
            raise ParameterError("buckets_per_level must be at least 8")
        if not 0.0 < reliable_fraction < 1.0:
            raise ParameterError("reliable_fraction must be in (0, 1)")
        self.seed = seed
        self.num_levels = num_levels
        self.buckets_per_level = buckets_per_level
        self.reliable_fraction = reliable_fraction
        self._level_hasher = SeededHasher(derive_seed(seed, "l0-level"), 64)
        self._bucket_hashes = [
            PairwiseHash(derive_seed(seed, "l0-bucket", level), buckets_per_level)
            for level in range(num_levels)
        ]
        self._counters = [[0] * buckets_per_level for _ in range(num_levels)]

    # -- internal helpers -----------------------------------------------------------

    def _max_level_of(self, element: int) -> int:
        """Deepest level the element is sampled into (it lands in 0..this)."""
        level_hash = self._level_hasher.hash_int(element)
        if level_hash == 0:
            return self.num_levels - 1
        trailing = (level_hash & -level_hash).bit_length() - 1
        return min(trailing, self.num_levels - 1)

    def _check_compatible(self, other: "L0Estimator") -> None:
        if (
            self.seed != other.seed
            or self.num_levels != other.num_levels
            or self.buckets_per_level != other.buckets_per_level
        ):
            raise ParameterError("cannot combine L0 estimators with different parameters")

    # -- SetDifferenceEstimator interface ---------------------------------------------

    def update(self, element: int, side: int) -> None:
        self._validate_side(side)
        delta = 1 if side == 1 else 3  # -1 mod 4
        deepest = self._max_level_of(element)
        for level in range(deepest + 1):
            bucket = self._bucket_hashes[level](self._level_hasher.hash_int(element))
            counters = self._counters[level]
            counters[bucket] = (counters[bucket] + delta) % 4

    def merge(self, other: "L0Estimator") -> "L0Estimator":
        self._check_compatible(other)
        merged = L0Estimator(
            self.seed, self.num_levels, self.buckets_per_level, self.reliable_fraction
        )
        for level in range(self.num_levels):
            mine = self._counters[level]
            theirs = other._counters[level]
            merged._counters[level] = [(a + b) % 4 for a, b in zip(mine, theirs)]
        return merged

    def _nonzero_count(self, level: int) -> int:
        return sum(1 for value in self._counters[level] if value != 0)

    def query(self) -> int:
        threshold = int(self.reliable_fraction * self.buckets_per_level)
        for level in range(self.num_levels):
            count = self._nonzero_count(level)
            if count <= threshold:
                if level == 0:
                    return count
                return max(1, count) << level
        # Every level is saturated -- the difference is astronomically large;
        # report the most pessimistic scaled estimate.
        deepest = self.num_levels - 1
        return max(1, self._nonzero_count(deepest)) << deepest

    @property
    def size_bits(self) -> int:
        # Two bits per counter; that is the whole transmitted payload.
        return 2 * self.num_levels * self.buckets_per_level

    def write_wire(self, writer) -> None:
        for counters in self._counters:
            for value in counters:
                writer.write(value, 2)

    def read_wire(self, reader) -> None:
        for counters in self._counters:
            for bucket in range(self.buckets_per_level):
                counters[bucket] = reader.read(2)
