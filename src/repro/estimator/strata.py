"""The strata estimator of Eppstein et al. (baseline, reference [14]).

Elements are assigned to strata geometrically: an element lands in stratum
``i`` with probability ``2^{-(i+1)}`` (the number of trailing zeros of a
seeded hash).  Each stratum is a small fixed-size IBLT.  Elements of ``S1``
are inserted, elements of ``S2`` are deleted, so each stratum ends up
encoding a geometric sample of the symmetric difference.  To query, strata
are decoded from the deepest (sparsest) down; the count of recovered keys is
accumulated and scaled up by ``2^{i+1}`` at the first stratum that fails to
decode.  If every stratum decodes the estimate is exact.

The paper improves on this structure (its Theorem 3.1 estimator is a
``O(log u)`` factor smaller); we keep the strata estimator as the baseline
for the estimator ablation benchmark (experiment E5 in DESIGN.md).
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.estimator.base import SetDifferenceEstimator
from repro.hashing import SeededHasher, derive_seed
from repro.iblt import IBLT, IBLTParameters


class StrataEstimator(SetDifferenceEstimator):
    """Strata estimator backed by a hierarchy of small IBLTs.

    Parameters
    ----------
    seed:
        Shared seed; both parties must use the same one.
    num_strata:
        Number of strata (log of the largest difference the estimator can
        gauge; 32 covers any practical input in this library).
    cells_per_stratum:
        IBLT size per stratum.  The original paper uses 80; smaller values
        trade accuracy for size.
    key_bits:
        Width of the hashed element representatives stored in the strata.
    """

    def __init__(
        self,
        seed: int,
        num_strata: int = 32,
        cells_per_stratum: int = 40,
        key_bits: int = 64,
    ) -> None:
        if num_strata <= 0:
            raise ParameterError("num_strata must be positive")
        if cells_per_stratum < 8:
            raise ParameterError("cells_per_stratum must be at least 8")
        self.seed = seed
        self.num_strata = num_strata
        self.cells_per_stratum = cells_per_stratum
        self.key_bits = key_bits
        self._level_hasher = SeededHasher(derive_seed(seed, "strata-level"), 64)
        self._key_hasher = SeededHasher(derive_seed(seed, "strata-key"), key_bits)
        self._strata = [
            IBLT(
                IBLTParameters(
                    num_cells=cells_per_stratum,
                    key_bits=key_bits,
                    seed=derive_seed(seed, "strata-iblt", level),
                    num_hashes=3,
                    checksum_bits=24,
                    count_bits=16,
                )
            )
            for level in range(num_strata)
        ]

    # -- internal helpers -----------------------------------------------------------

    def _stratum_of(self, element: int) -> int:
        level_hash = self._level_hasher.hash_int(element)
        # Trailing zeros of a uniform 64-bit value; geometric with ratio 1/2.
        if level_hash == 0:
            return self.num_strata - 1
        trailing = (level_hash & -level_hash).bit_length() - 1
        return min(trailing, self.num_strata - 1)

    def _representative(self, element: int) -> int:
        # Hash the element so arbitrary (wide) universes fit in key_bits,
        # and so that strata contents look uniform.
        return self._key_hasher.hash_int(element)

    def _check_compatible(self, other: "StrataEstimator") -> None:
        if (
            self.seed != other.seed
            or self.num_strata != other.num_strata
            or self.cells_per_stratum != other.cells_per_stratum
            or self.key_bits != other.key_bits
        ):
            raise ParameterError("cannot combine strata estimators with different parameters")

    # -- SetDifferenceEstimator interface ---------------------------------------------

    def update(self, element: int, side: int) -> None:
        self._validate_side(side)
        stratum = self._stratum_of(element)
        representative = self._representative(element)
        if side == 1:
            self._strata[stratum].insert(representative)
        else:
            self._strata[stratum].delete(representative)

    def update_all(self, elements, side: int) -> None:
        """Batch form of :meth:`update`: group by stratum, then one batch
        insert/delete per stratum IBLT (hits the cell store's scatter path)."""
        self._validate_side(side)
        grouped: dict[int, list[int]] = {}
        for element in elements:
            grouped.setdefault(self._stratum_of(element), []).append(
                self._representative(element)
            )
        for stratum, representatives in grouped.items():
            if side == 1:
                self._strata[stratum].insert_batch(representatives)
            else:
                self._strata[stratum].delete_batch(representatives)

    def merge(self, other: "StrataEstimator") -> "StrataEstimator":
        self._check_compatible(other)
        merged = StrataEstimator(
            self.seed, self.num_strata, self.cells_per_stratum, self.key_bits
        )
        merged._strata = [
            mine.merge(theirs) for mine, theirs in zip(self._strata, other._strata)
        ]
        return merged

    def query(self) -> int:
        total = 0
        for level in range(self.num_strata - 1, -1, -1):
            result = self._strata[level].try_decode()
            if not result.success:
                return max(1, total) * (1 << (level + 1))
            total += result.symmetric_difference_size()
        return total

    @property
    def size_bits(self) -> int:
        return sum(stratum.size_bits for stratum in self._strata)

    def write_wire(self, writer) -> None:
        for stratum in self._strata:
            writer.write(stratum.serialize(), stratum.size_bits)

    def read_wire(self, reader) -> None:
        self._strata = [
            IBLT.deserialize(stratum.params, reader.read(stratum.size_bits))
            for stratum in self._strata
        ]
