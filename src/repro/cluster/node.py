"""A live cluster node: one replica served by an asyncio :class:`SyncServer`.

:class:`ClusterNode` wires a :class:`~repro.cluster.replica.VersionedKV`
into the existing service stack:

* inbound gossip: the server hosts the replica under the ``"kv"``
  protocol; after each session the server's ``on_outcome`` hook hands the
  outcome back here and the node merges the records its side recovered
  (the kv parties themselves are pure);
* outbound gossip: :meth:`ClusterNode.agossip` runs
  :func:`~repro.service.client.areconcile` against a peer (this node plays
  ``bob``, the recovering role) and merges the returned records;
* operations: ``kv-put`` / ``kv-delete`` / ``kv-digest`` / ``kv-gossip``
  control frames (JSON payloads, answered as ``"<label>-ack"``) expose
  writes, the convergence digest, and remotely-triggered gossip -- which is
  what the ``python -m repro.cluster`` CLI drives from other processes.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.cluster.replica import VersionedKV
from repro.errors import ClusterError, ServiceError
from repro.protocols.options import ReconcileOptions
from repro.protocols.party import PartyOutcome
from repro.protocols.transports import FRAME_CONTROL
from repro.service.admission import AdmissionController
from repro.service.client import areconcile
from repro.service.metrics import ServiceMetrics
from repro.service.server import SyncServer
from repro.service.transport import AsyncSocketTransport

#: Control-frame labels a cluster node answers beyond the service's own.
PUT_LABEL = "kv-put"
DELETE_LABEL = "kv-delete"
DIGEST_LABEL = "kv-digest"
GOSSIP_LABEL = "kv-gossip"


async def acontrol(host: str, port: int, label: str, body: dict[str, Any]) -> dict[str, Any]:
    """One control round-trip against a cluster node; returns the ack body."""
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except OSError as exc:
        raise ServiceError(f"cannot reach the cluster node at {host}:{port}: {exc}") from exc
    transport = AsyncSocketTransport(reader, writer, "bob")
    try:
        await transport.send_frame(
            FRAME_CONTROL, label, payload=json.dumps(body).encode()
        )
        frame = await transport.receive_frame()
        if frame.kind != FRAME_CONTROL or frame.label != f"{label}-ack":
            raise ServiceError(
                f"expected a {label}-ack, got frame kind {frame.kind} "
                f"label {frame.label!r}"
            )
        reply = json.loads(frame.payload.decode())
    finally:
        await transport.aclose()
    if not reply.get("ok"):
        raise ClusterError(
            f"node refused {label!r}: {reply.get('error', 'unknown error')}"
        )
    return reply


class ClusterNode:
    """One live node: a replica, its sync server, and the gossip client.

    Parameters
    ----------
    name:
        Node name (appears in gossip summaries and metrics).
    replica:
        The node's :class:`~repro.cluster.replica.VersionedKV`.
    options:
        Session options for outbound gossip; defaults to the unknown-``d``
        estimator variant with the replica's seed.
    """

    def __init__(
        self,
        name: str,
        replica: VersionedKV,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        options: ReconcileOptions | None = None,
        metrics: ServiceMetrics | None = None,
        admission: AdmissionController | None = None,
        drain_deadline: float = 5.0,
    ) -> None:
        self.name = name
        self.replica = replica
        self.options = (
            options if options is not None else ReconcileOptions(seed=replica.seed)
        )
        if self.options.seed != replica.seed:
            raise ClusterError(
                f"gossip options carry seed {self.options.seed} but the replica "
                f"fingerprints with seed {replica.seed}"
            )
        self.server = SyncServer(
            {"kv": replica},
            host=host,
            port=port,
            metrics=metrics,
            admission=admission,
            drain_deadline=drain_deadline,
            on_outcome=self._absorb_outcome,
            control_handlers={
                PUT_LABEL: self._handle_put,
                DELETE_LABEL: self._handle_delete,
                DIGEST_LABEL: self._handle_digest,
                GOSSIP_LABEL: self._handle_gossip,
            },
        )

    # -- lifecycle (delegated to the server) -----------------------------------------

    async def start(self) -> None:
        await self.server.start()

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.host

    async def serve_forever(self) -> None:
        await self.server.serve_forever()

    async def adrain(self, deadline: float | None = None) -> dict[str, int]:
        return await self.server.adrain(deadline)

    async def aclose(self) -> None:
        await self.server.aclose()

    async def __aenter__(self) -> "ClusterNode":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()

    # -- inbound: the server-side half of a gossip round -----------------------------

    def _absorb_outcome(self, protocol: str, role: str, outcome: PartyOutcome | None) -> None:
        if protocol != "kv" or outcome is None or not outcome.success:
            return
        self.replica.merge_records(outcome.details.get("kv_apply", ()))

    # -- outbound: initiate one gossip round with a peer -----------------------------

    async def agossip(self, host: str, port: int) -> dict[str, Any]:
        """One pairwise round with the node at ``host:port``.

        This node plays ``bob`` (recovers the peer's one-sided records);
        the peer's server absorbs the records only this node held through
        its own ``on_outcome`` hook.  Returns an accounting summary whose
        ``bits`` is the session transcript's exact charged total.
        """
        result = await areconcile(
            host, port, "kv", self.replica, role="bob", options=self.options
        )
        applied = 0
        if result.success:
            applied = self.replica.merge_records(result.details.get("kv_apply", ()))
        return {
            "ok": result.success,
            "initiator": self.name,
            "peer": f"{host}:{port}",
            "bits": result.transcript.total_bits,
            "messages": len(result.transcript.messages),
            "applied": applied,
            "digest": self.replica.digest(),
        }

    # -- control verbs (the CLI speaks these) ----------------------------------------

    async def _handle_put(self, payload: bytes) -> bytes:
        try:
            body = json.loads(payload.decode())
            record = self.replica.put(str(body["key"]), str(body["value"]))
        except (ValueError, KeyError, TypeError, ClusterError) as exc:
            return json.dumps({"ok": False, "error": str(exc)}).encode()
        return json.dumps({"ok": True, "version": record.version}).encode()

    async def _handle_delete(self, payload: bytes) -> bytes:
        try:
            body = json.loads(payload.decode())
            record = self.replica.delete(str(body["key"]))
        except (ValueError, KeyError, TypeError, ClusterError) as exc:
            return json.dumps({"ok": False, "error": str(exc)}).encode()
        return json.dumps({"ok": True, "version": record.version}).encode()

    async def _handle_digest(self, payload: bytes) -> bytes:
        return json.dumps(
            {
                "ok": True,
                "node": self.name,
                "digest": self.replica.digest(),
                "size": len(self.replica),
                "clock": self.replica.clock,
            }
        ).encode()

    async def _handle_gossip(self, payload: bytes) -> bytes:
        """Gossip with the peer named in the payload, on request."""
        try:
            body = json.loads(payload.decode())
            host = str(body.get("host", "127.0.0.1"))
            port = int(body["port"])
            summary = await self.agossip(host, port)
        except (ValueError, KeyError, TypeError, ClusterError, ServiceError) as exc:
            return json.dumps({"ok": False, "error": str(exc)}).encode()
        return json.dumps(summary).encode()
