"""The deterministic simulated cluster: N replicas, gossip to convergence.

Each :meth:`Cluster.run_round` has every live node initiate one pairwise
``kv`` session with a scheduler-chosen peer; the session's two outcomes
carry the records each side should merge, the driver applies them, and the
transcript's charged bits land in :class:`~repro.cluster.metrics.ClusterMetrics`
-- so a run's total is exactly the sum of its session transcripts.

A failed session (an undersized sketch that does not peel) leaves both
replicas untouched; the driver retries the pair with a quadrupled bound
and accounts the bits of every attempt, mirroring the repeated-doubling
protocols' accounting.

``exchange="full"`` swaps the reconciliation for the classic full-state
baseline -- both sides ship every record, every round -- under the same
scheduler, metrics, and convergence detection, which is what the
benchmark's speedup compares against.

Membership is dynamic: :meth:`Cluster.add_node` joins a cold node (it
catches up by gossip alone), :meth:`Cluster.crash` / :meth:`Cluster.restart`
model a process death and its journal-replay recovery.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.cluster.metrics import ClusterMetrics, ConvergenceReport, GossipSessionRecord
from repro.cluster.gossip import GossipScheduler
from repro.cluster.records import records_bits
from repro.cluster.replica import VersionedKV
from repro.errors import ClusterError, ParameterError
from repro.protocols.options import ReconcileOptions
from repro.protocols.registry import get as get_protocol
from repro.protocols.session import Session
from repro.protocols.transports import SerializingTransport, Transport

#: Bound multiplier between retry attempts of one failed pair sync.
_RETRY_FACTOR = 4
#: First known-``d`` bound tried after an unknown-``d`` attempt failed.
_FALLBACK_BOUND = 16


class Cluster:
    """N replicas of one :class:`~repro.cluster.replica.VersionedKV` keyspace.

    Parameters
    ----------
    num_nodes:
        Initial membership (nodes ``node0`` .. ``node{N-1}``).
    seed:
        Public-coin seed shared by fingerprints, sketches, and the gossip
        schedule; the whole run is a deterministic function of it.
    difference_bound:
        Per-round sketch bound.  An integer keeps every round on the same
        table geometry (so the live sketches are reused as-is, O(d) per
        round); ``None`` runs the estimator-sized unknown-``d`` variant.
    policy:
        Peer-selection policy (see :class:`~repro.cluster.gossip.GossipScheduler`).
    exchange:
        ``"gossip"`` (set reconciliation, the default) or ``"full"`` (the
        full-state-exchange baseline).
    serializing:
        Run every session over a :class:`SerializingTransport` so charged
        sizes are validated against real bytes (slower; tests use it to pin
        wire-exactness inside the cluster loop).
    journal_root:
        Directory for per-node record journals; required for
        :meth:`restart` to recover state after :meth:`crash`.
    """

    def __init__(
        self,
        num_nodes: int,
        *,
        seed: int = 0,
        difference_bound: int | None = 32,
        num_hashes: int = 4,
        backend: str | None = None,
        policy: str = "uniform",
        exchange: str = "gossip",
        serializing: bool = False,
        journal_root: Path | str | None = None,
        max_attempts: int = 4,
    ) -> None:
        if num_nodes < 2:
            raise ParameterError("a cluster needs at least 2 nodes")
        if exchange not in ("gossip", "full"):
            raise ParameterError(f"unknown exchange mode {exchange!r}")
        self.seed = seed
        self.exchange = exchange
        self.serializing = serializing
        self.max_attempts = max_attempts
        self.journal_root = Path(journal_root) if journal_root is not None else None
        self.options = ReconcileOptions(
            seed=seed,
            difference_bound=difference_bound,
            num_hashes=num_hashes,
            backend=backend,
        )
        self.scheduler = GossipScheduler(seed, policy)
        self.metrics = ClusterMetrics()
        self.replicas: dict[str, VersionedKV] = {}
        self._next_node_id = 0
        self._crashed: dict[str, int] = {}
        self.rounds_run = 0
        for _ in range(num_nodes):
            self.add_node()

    # -- membership -----------------------------------------------------------------

    def _journal_path(self, name: str) -> Path | None:
        if self.journal_root is None:
            return None
        return self.journal_root / f"{name}.journal.jsonl"

    def add_node(self, name: str | None = None) -> str:
        """Join a cold node; it converges through ordinary catch-up gossip."""
        node_id = self._next_node_id
        self._next_node_id += 1
        name = name if name is not None else f"node{node_id}"
        if name in self.replicas or name in self._crashed:
            raise ParameterError(f"node name {name!r} already in use")
        self.replicas[name] = VersionedKV(
            node_id, seed=self.seed, journal_path=self._journal_path(name)
        )
        return name

    def crash(self, name: str) -> None:
        """Model a process death: the in-memory replica is gone entirely."""
        replica = self.replicas.pop(name, None)
        if replica is None:
            raise ClusterError(f"no live node named {name!r}")
        self._crashed[name] = replica.node_id
        replica.close()

    def restart(self, name: str) -> VersionedKV:
        """Restart a crashed node: journal replay, then gossip catches it up."""
        node_id = self._crashed.pop(name, None)
        if node_id is None:
            raise ClusterError(f"no crashed node named {name!r}")
        replica = VersionedKV(
            node_id, seed=self.seed, journal_path=self._journal_path(name)
        )
        self.replicas[name] = replica
        return replica

    @property
    def node_names(self) -> list[str]:
        return sorted(self.replicas)

    def __getitem__(self, name: str) -> VersionedKV:
        return self.replicas[name]

    # -- local writes ---------------------------------------------------------------

    def put(self, name: str, key: str, value: str) -> None:
        self.replicas[name].put(key, value)

    def delete(self, name: str, key: str) -> None:
        self.replicas[name].delete(key)

    # -- one pairwise round ---------------------------------------------------------

    def _transport(self) -> Transport | None:
        return SerializingTransport() if self.serializing else None

    def _bound_schedule(self) -> Iterable[int | None]:
        bound = self.options.difference_bound
        yield bound
        if bound is None:
            bound = _FALLBACK_BOUND
        for _ in range(1, self.max_attempts):
            bound *= _RETRY_FACTOR
            yield bound

    def gossip_once(self, initiator: str, peer: str) -> GossipSessionRecord:
        """One pairwise sync; retries with larger bounds, applies the merges.

        The initiator plays ``bob`` (the recovering role, matching the live
        async client) and the peer plays ``alice``.
        """
        if initiator == peer:
            raise ParameterError("a node cannot gossip with itself")
        initiator_kv = self.replicas[initiator]
        peer_kv = self.replicas[peer]
        if self.exchange == "full":
            record = self._full_exchange(initiator, peer)
            self.scheduler.record_sync(initiator, peer)
            self.metrics.record(record)
            return record
        spec = get_protocol("kv")
        bits = 0
        messages = 0
        attempts = 0
        applied = 0
        success = False
        for bound in self._bound_schedule():
            attempts += 1
            options = self.options.merged(difference_bound=bound)
            alice_party, bob_party = spec.build(peer_kv, initiator_kv, options)
            result = Session(alice_party, bob_party, transport=self._transport()).run()
            bits += result.transcript.total_bits
            messages += len(result.transcript.messages)
            if result.alice.success and result.bob.success:
                applied += peer_kv.merge_records(result.alice.details["kv_apply"])
                applied += initiator_kv.merge_records(result.bob.details["kv_apply"])
                success = True
                break
        record = GossipSessionRecord(
            round_index=self.rounds_run + 1,
            initiator=initiator,
            peer=peer,
            success=success,
            bits=bits,
            messages=messages,
            attempts=attempts,
            records_applied=applied,
        )
        self.scheduler.record_sync(initiator, peer)
        self.metrics.record(record)
        return record

    def _full_exchange(self, initiator: str, peer: str) -> GossipSessionRecord:
        """The baseline: both sides ship their whole record list."""
        initiator_kv = self.replicas[initiator]
        peer_kv = self.replicas[peer]
        initiator_records = initiator_kv.records()
        peer_records = peer_kv.records()
        bits = records_bits(initiator_records) + records_bits(peer_records)
        applied = peer_kv.merge_records(initiator_records)
        applied += initiator_kv.merge_records(peer_records)
        return GossipSessionRecord(
            round_index=self.rounds_run + 1,
            initiator=initiator,
            peer=peer,
            success=True,
            bits=bits,
            messages=2,
            attempts=1,
            records_applied=applied,
        )

    # -- rounds and convergence -----------------------------------------------------

    def run_round(self) -> int:
        """Every live node initiates one sync; returns records applied."""
        round_index = self.rounds_run + 1
        applied = 0
        names = self.node_names
        for name in names:
            peer = self.scheduler.select_peer(name, round_index, names)
            applied += self.gossip_once(name, peer).records_applied
        self.rounds_run = round_index
        return applied

    def converged(self) -> bool:
        """Whether every live replica's canonical state digest agrees."""
        digests = {replica.digest() for replica in self.replicas.values()}
        return len(digests) <= 1

    def run_until_converged(self, max_rounds: int = 64) -> ConvergenceReport:
        """Gossip until byte-identical replicas (or ``max_rounds``)."""
        rounds = 0
        while not self.converged() and rounds < max_rounds:
            self.run_round()
            rounds += 1
        first = self.replicas[self.node_names[0]]
        return ConvergenceReport(
            converged=self.converged(),
            rounds=rounds,
            sessions=self.metrics.sessions_run,
            total_bits=self.metrics.total_bits,
            node_count=len(self.replicas),
            digest=first.digest(),
        )
