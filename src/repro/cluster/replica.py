"""One replica of the last-writer-wins key-value store.

A :class:`VersionedKV` holds the record map and, alongside it, the *set
view* a gossip session reconciles: the set of 64-bit record fingerprints
(:func:`~repro.cluster.records.record_fingerprint`).  Every mutation is
routed through an in-process :class:`~repro.store.SketchStore` ``apply``
call, so the live IBLTs, estimators, and verification hash tracking the
fingerprint set are maintained in O(1) per changed record -- a gossip
round then costs O(d) sketch work, never an O(n) re-encode.

Durability is optional: given a ``journal_path`` the replica appends every
applied record to a :class:`~repro.cluster.journal.RecordJournal` before
mutating state, and a restarted replica replays the journal through the
same LWW merge (idempotent, so duplicates and superseded records are
harmless) to recover its exact pre-crash state.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable

from repro.cluster.journal import RecordJournal
from repro.cluster.records import (
    FINGERPRINT_UNIVERSE,
    KVRecord,
    record_fingerprint,
    state_digest,
)
from repro.errors import ClusterError, ParameterError
from repro.store.config import SketchConfig
from repro.store.parties import StoreView
from repro.store.sketch import SketchStore

#: The store key every replica files its fingerprint set under.
_STORE_KEY = "kv"


class VersionedKV:
    """One replica node's state: records, fingerprints, and live sketches.

    Parameters
    ----------
    node_id:
        This replica's writer id (the LWW tie-break between concurrent
        writers); must be unique per cluster.
    seed:
        Public-coin seed shared by every replica in the cluster.  Record
        fingerprints are derived from it, so replicas with different seeds
        hold incompatible fingerprint sets and refuse to gossip.
    journal_path:
        Optional record journal; when given, applied records are journaled
        before they mutate state and replayed on construction.
    metrics:
        Optional sink forwarded to the internal sketch store (anything
        with ``record_store_hit``-style methods, e.g.
        :class:`~repro.service.metrics.ServiceMetrics`).
    """

    def __init__(
        self,
        node_id: int,
        *,
        seed: int = 0,
        journal_path: Path | str | None = None,
        fsync: bool = False,
        metrics: Any = None,
    ) -> None:
        if node_id < 0:
            raise ParameterError("node_id must be non-negative")
        self.node_id = node_id
        self.seed = seed
        self.clock = 0
        self._records: dict[str, KVRecord] = {}
        self._fingerprints: set[int] = set()
        self._key_by_fingerprint: dict[int, str] = {}
        self.store = SketchStore(metrics=metrics)
        self._journal = (
            RecordJournal(journal_path, fsync=fsync) if journal_path is not None else None
        )
        if self._journal is not None:
            for record in self._journal.records():
                if record.wins_over(self._records.get(record.key)):
                    self._apply(record, journal=False)

    # -- local writes ----------------------------------------------------------------

    def put(self, key: str, value: str) -> KVRecord:
        """Write ``key = value`` at the next local version; returns the record."""
        record = KVRecord(key=key, version=self.clock + 1, writer=self.node_id, value=value)
        self.merge_records([record])
        return record

    def delete(self, key: str) -> KVRecord:
        """Write a tombstone for ``key`` (deletions replicate like writes)."""
        record = KVRecord(key=key, version=self.clock + 1, writer=self.node_id, value=None)
        self.merge_records([record])
        return record

    # -- merge (local writes and gossip both land here) ------------------------------

    def merge_records(self, records: Iterable[KVRecord]) -> int:
        """LWW-merge records into this replica; returns how many applied.

        Commutative, associative, and idempotent: merging any multiset of
        records in any order yields the same state, which is what makes
        anti-entropy gossip converge.
        """
        applied = 0
        for record in records:
            if record.wins_over(self._records.get(record.key)):
                self._apply(record)
                applied += 1
        return applied

    def _apply(self, record: KVRecord, *, journal: bool = True) -> None:
        new_fp = record_fingerprint(self.seed, record)
        owner = self._key_by_fingerprint.get(new_fp)
        if owner is not None:
            # Same element for a different record: a 64-bit fingerprint
            # collision.  Astronomically unlikely; refusing loudly beats
            # silently desynchronizing the sketches from the record map.
            raise ClusterError(
                f"fingerprint collision: record for {record.key!r} maps to the "
                f"element already held by {owner!r}"
            )
        old = self._records.get(record.key)
        deleted: list[int] = []
        if old is not None:
            deleted.append(record_fingerprint(self.seed, old))
        if journal and self._journal is not None:
            self._journal.append(record)
        # Pre-mutation dataset: SketchStore.apply sizes a fresh entry from
        # it and updates every live sketch in O(1) per changed element.
        self.store.apply(_STORE_KEY, [new_fp], deleted, dataset=self._fingerprints)
        if old is not None:
            old_fp = deleted[0]
            self._fingerprints.discard(old_fp)
            self._key_by_fingerprint.pop(old_fp, None)
        self._fingerprints.add(new_fp)
        self._key_by_fingerprint[new_fp] = record.key
        self._records[record.key] = record
        if record.version > self.clock:
            self.clock = record.version

    # -- reads -----------------------------------------------------------------------

    def get(self, key: str) -> str | None:
        """The current value for ``key`` (``None`` if absent or deleted)."""
        record = self._records.get(key)
        return None if record is None or record.tombstone else record.value

    def record(self, key: str) -> KVRecord | None:
        return self._records.get(key)

    def records(self) -> list[KVRecord]:
        """Every record (tombstones included), sorted by key."""
        return [self._records[key] for key in sorted(self._records)]

    def records_for(self, fingerprints: Iterable[int]) -> tuple[KVRecord, ...]:
        """The records behind verified fingerprints of *this* replica's set."""
        found: list[KVRecord] = []
        for fingerprint in fingerprints:
            key = self._key_by_fingerprint.get(fingerprint)
            if key is None:
                raise ClusterError(
                    f"fingerprint {fingerprint:#x} is not in this replica's set"
                )
            found.append(self._records[key])
        return tuple(found)

    @property
    def fingerprints(self) -> frozenset[int]:
        return frozenset(self._fingerprints)

    def __len__(self) -> int:
        return len(self._records)

    def digest(self) -> str:
        """Canonical state digest; equality across replicas == convergence."""
        return state_digest(self._records.values())

    # -- the session-facing seam -----------------------------------------------------

    def view_for(self, config: SketchConfig) -> StoreView:
        """The store view a gossip session's parties serve sketches from.

        The first touch of a given sketch geometry encodes the fingerprint
        set once; afterwards every sketch is maintained incrementally by
        :meth:`_apply`, so repeat gossip rounds are O(d).
        """
        if config.universe_size != FINGERPRINT_UNIVERSE:
            raise ParameterError(
                "kv sessions reconcile 64-bit record fingerprints; "
                f"universe_size must be 2**64, got {config.universe_size}"
            )
        if config.seed != self.seed:
            raise ClusterError(
                f"session seed {config.seed} disagrees with this replica's "
                f"fingerprint seed {self.seed}; the fingerprint sets would be "
                "incompatible"
            )
        return StoreView(self.store, _STORE_KEY, config, self._fingerprints)

    # -- durability ------------------------------------------------------------------

    @property
    def journal(self) -> RecordJournal | None:
        return self._journal

    def compact_journal(self) -> None:
        """Rewrite the journal down to the current merged state."""
        if self._journal is None:
            raise ClusterError("this replica has no journal to compact")
        self._journal.compact(self.records())

    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()
