"""Versioned key-value records and their 64-bit set fingerprints.

A replica's state is a mapping ``key -> KVRecord``; the *set* a gossip
round reconciles is the set of record fingerprints, one 64-bit element per
``(key, version, writer, value)`` tuple, derived with the same splitmix64
mixing the IBLT hash paths use.  Two replicas that hold the same record
contribute the same element; a key they disagree on contributes one element
per side, so the symmetric difference of the fingerprint sets is exactly
the set of records that differ -- the quantity ``d`` the paper's sketches
are sized by.

Conflict resolution is deterministic last-writer-wins: records are totally
ordered by ``(version, writer, tombstone-rank, value)``, so any two
replicas merging the same records in any order converge to the same state
(the merge is commutative, associative, and idempotent).

The wire encoding is bit-exact: :func:`record_bits` is the charged size and
:func:`write_record` produces exactly that many bits, so session
transcripts account for every value byte shipped in phase two of a gossip
round.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.comm.bits import BitReader, BitWriter
from repro.errors import ParameterError
from repro.hashing import derive_seed
from repro.hashing.mix import MASK64, mix64

#: Every record fingerprint is a 64-bit element; sessions reconcile sets
#: drawn from this universe.
FINGERPRINT_UNIVERSE = 1 << 64

#: Wire-field widths (bits) of the record encoding.
KEY_LENGTH_BITS = 16
VERSION_BITS = 64
WRITER_BITS = 32
TOMBSTONE_BITS = 1
VALUE_LENGTH_BITS = 24
#: List-length prefix of the phase-two value-fetch frames.
COUNT_BITS = 32

#: Mixed into tombstone fingerprints in place of a value hash, so deleting
#: a key maps to a different element than any live value for it.
_TOMBSTONE_SALT = 0x746F6D6273746F6E  # b"tombston" as an integer


def _text_hash64(data: bytes, *, person: bytes) -> int:
    """Fold arbitrary bytes to a 64-bit word (keyed BLAKE2b, like
    :func:`~repro.hashing.mix.fingerprint64` does for wide IBLT keys)."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8, person=person).digest(), "big"
    )


@dataclass(frozen=True)
class KVRecord:
    """One versioned write: a ``(key, version, writer, value)`` tuple.

    ``value is None`` marks a tombstone (the key was deleted at this
    version); tombstones are first-class records so deletions propagate
    through gossip like any other write.
    """

    key: str
    version: int
    writer: int
    value: str | None

    def __post_init__(self) -> None:
        if not self.key:
            raise ParameterError("record key must be non-empty")
        if len(self.key.encode("utf-8")) >= 1 << KEY_LENGTH_BITS:
            raise ParameterError("record key exceeds the wire length field")
        if not 1 <= self.version < 1 << VERSION_BITS:
            raise ParameterError("record version must fit in 64 bits and be >= 1")
        if not 0 <= self.writer < 1 << WRITER_BITS:
            raise ParameterError("record writer id must fit in 32 bits")
        if (
            self.value is not None
            and len(self.value.encode("utf-8")) >= 1 << VALUE_LENGTH_BITS
        ):
            raise ParameterError("record value exceeds the wire length field")

    @property
    def tombstone(self) -> bool:
        return self.value is None

    def lww_rank(self) -> tuple[int, int, int, str]:
        """The last-writer-wins total order.

        Version first (Lamport clock), writer id as the deterministic
        tie-break between concurrent writers, then value content so the
        order is total even for byzantine duplicates.
        """
        if self.value is None:
            return (self.version, self.writer, 0, "")
        return (self.version, self.writer, 1, self.value)

    def wins_over(self, other: "KVRecord | None") -> bool:
        """Whether this record supersedes ``other`` under LWW merge."""
        return other is None or self.lww_rank() > other.lww_rank()

    # -- persistence (journal lines, control frames) ---------------------------------

    def to_wire(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "version": self.version,
            "writer": self.writer,
            "value": self.value,
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "KVRecord":
        value = wire["value"]
        return cls(
            key=str(wire["key"]),
            version=int(wire["version"]),
            writer=int(wire["writer"]),
            value=None if value is None else str(value),
        )


def record_fingerprint(seed: int, record: KVRecord) -> int:
    """The 64-bit set element a record contributes, shared public-coin style.

    Chained splitmix64 over the record fields: both parties derive the same
    element from the same ``seed`` without communicating, and any field
    change moves the record to an (overwhelmingly likely) fresh element.
    """
    h = mix64(derive_seed(seed, "kv-record") & MASK64)
    h = mix64(h ^ _text_hash64(record.key.encode("utf-8"), person=b"repro-kv-key"))
    h = mix64(h ^ (record.version & MASK64))
    h = mix64(h ^ record.writer)
    if record.value is None:
        h = mix64(h ^ _TOMBSTONE_SALT)
    else:
        h = mix64(
            h ^ _text_hash64(record.value.encode("utf-8"), person=b"repro-kv-val")
        )
    return h


# -- bit-exact wire encoding ----------------------------------------------------------


def record_bits(record: KVRecord) -> int:
    """Exact encoded size of one record (the charged wire cost)."""
    bits = (
        KEY_LENGTH_BITS
        + 8 * len(record.key.encode("utf-8"))
        + VERSION_BITS
        + WRITER_BITS
        + TOMBSTONE_BITS
    )
    if record.value is not None:
        bits += VALUE_LENGTH_BITS + 8 * len(record.value.encode("utf-8"))
    return bits


def write_record(writer: BitWriter, record: KVRecord) -> None:
    key_bytes = record.key.encode("utf-8")
    writer.write(len(key_bytes), KEY_LENGTH_BITS)
    for byte in key_bytes:
        writer.write(byte, 8)
    writer.write(record.version, VERSION_BITS)
    writer.write(record.writer, WRITER_BITS)
    writer.write(1 if record.value is None else 0, TOMBSTONE_BITS)
    if record.value is not None:
        value_bytes = record.value.encode("utf-8")
        writer.write(len(value_bytes), VALUE_LENGTH_BITS)
        for byte in value_bytes:
            writer.write(byte, 8)


def read_record(reader: BitReader) -> KVRecord:
    key_length = reader.read(KEY_LENGTH_BITS)
    key = bytes(reader.read(8) for _ in range(key_length)).decode("utf-8")
    version = reader.read(VERSION_BITS)
    writer_id = reader.read(WRITER_BITS)
    tombstone = reader.read(TOMBSTONE_BITS)
    value: str | None = None
    if not tombstone:
        value_length = reader.read(VALUE_LENGTH_BITS)
        value = bytes(reader.read(8) for _ in range(value_length)).decode("utf-8")
    return KVRecord(key=key, version=version, writer=writer_id, value=value)


def records_bits(records: Sequence[KVRecord]) -> int:
    """Exact size of a counted record list frame."""
    return COUNT_BITS + sum(record_bits(record) for record in records)


def state_digest(records: Iterable[KVRecord]) -> str:
    """Canonical digest of a full replica state (order-independent input).

    Two replicas are converged exactly when their digests agree: the digest
    folds every record field in sorted-key order, so byte-identical state
    is both necessary and sufficient.
    """
    hasher = hashlib.blake2b(digest_size=16, person=b"repro-kv-state")
    for record in sorted(records, key=lambda item: item.key):
        for field in (record.key, str(record.version), str(record.writer)):
            encoded = field.encode("utf-8")
            hasher.update(len(encoded).to_bytes(4, "big"))
            hasher.update(encoded)
        if record.value is None:
            hasher.update(b"\x00")
        else:
            encoded = record.value.encode("utf-8")
            hasher.update(b"\x01" + len(encoded).to_bytes(4, "big"))
            hasher.update(encoded)
    return hasher.hexdigest()
