"""Cluster-level accounting: per-session records and convergence reports.

Every gossip session contributes one :class:`GossipSessionRecord` whose
``bits`` field is the session transcript's ``total_bits`` -- summing the
records therefore matches the summed transcripts *exactly*, which is what
the acceptance tests pin.  Failed attempts are counted too (their sketches
crossed the wire), mirroring how the repeated-doubling protocols charge
every round they spend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class GossipSessionRecord:
    """One pairwise gossip session (including its failed attempts)."""

    round_index: int
    initiator: str
    peer: str
    success: bool
    bits: int
    messages: int
    attempts: int
    records_applied: int


@dataclass
class ClusterMetrics:
    """Accumulates gossip session records for one cluster run."""

    sessions: list[GossipSessionRecord] = field(default_factory=list)

    def record(self, session: GossipSessionRecord) -> None:
        self.sessions.append(session)

    @property
    def total_bits(self) -> int:
        """Exact sum of every session transcript's charged bits."""
        return sum(session.bits for session in self.sessions)

    @property
    def sessions_run(self) -> int:
        return len(self.sessions)

    @property
    def failures(self) -> int:
        return sum(1 for session in self.sessions if not session.success)

    def bits_for_round(self, round_index: int) -> int:
        return sum(
            session.bits
            for session in self.sessions
            if session.round_index == round_index
        )

    def round_rows(self) -> list[dict[str, Any]]:
        """Per-round summary rows for :func:`repro.bench.format_table`."""
        rounds = sorted({session.round_index for session in self.sessions})
        rows = []
        for round_index in rounds:
            in_round = [s for s in self.sessions if s.round_index == round_index]
            rows.append(
                {
                    "round": round_index,
                    "sessions": len(in_round),
                    "bits": sum(s.bits for s in in_round),
                    "applied": sum(s.records_applied for s in in_round),
                    "failed": sum(1 for s in in_round if not s.success),
                }
            )
        return rows


@dataclass(frozen=True)
class ConvergenceReport:
    """Outcome of :meth:`~repro.cluster.cluster.Cluster.run_until_converged`."""

    converged: bool
    rounds: int
    sessions: int
    total_bits: int
    node_count: int
    digest: str
