"""The ``kv`` gossip protocol: fingerprint reconciliation, then value fetch.

One gossip round between two replicas is a single two-phase session:

* **Phase 1 -- set reconciliation.**  Exactly the store-served ``ibf``
  exchange (:mod:`repro.store.parties`), run over the replicas' record
  fingerprint sets: alice sends her live IBLT (plus whole-set hash and
  size), bob subtracts his live table, peels, and verifies incrementally.
  The verified decode tells bob which fingerprints only alice holds
  (``positive``) and which only he holds (``negative``).
* **Phase 2 -- value fetch.**  Bob sends one ``"kv pull"`` frame: the
  fingerprints he wants resolved, together with the full records behind
  his own one-sided fingerprints (pushed so alice needs no second
  request).  Alice answers with a ``"kv records"`` frame carrying the
  requested records.  Both frames are bit-exact
  (:func:`~repro.cluster.records.record_bits`).

The parties are deliberately **pure**: neither side mutates its replica.
Each side returns the records it should merge in
``PartyOutcome.details["kv_apply"]``, and the gossip drivers (simulated
loop, async client, server hook) apply them after the session succeeds.
That keeps rounds atomic -- a failed session leaves both replicas
untouched -- and lets the same replica objects serve any number of
sessions with byte-identical transcripts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.cluster.records import (
    COUNT_BITS,
    FINGERPRINT_UNIVERSE,
    KVRecord,
    read_record,
    records_bits,
    write_record,
)
from repro.comm.bits import BitReader, BitWriter
from repro.errors import ParameterError
from repro.protocols.party import (
    END_OF_SESSION,
    PartyGenerator,
    PartyOutcome,
    PartyPair,
    Receive,
    Send,
    aborted_outcome,
)
from repro.protocols.parties.setrecon import IBFMessageCodec, SetReconContext, ibf_message_bits
from repro.protocols.wire import PayloadCodec
from repro.store.config import SketchConfig
from repro.store.parties import StoreView

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.replica import VersionedKV
    from repro.protocols.options import ReconcileOptions

#: The phase-two payloads.
PullRequest = tuple[tuple[int, ...], tuple[KVRecord, ...]]


class KVPullCodec(PayloadCodec):
    """Wire form of bob's pull frame: wanted fingerprints + pushed records."""

    def write(self, writer: BitWriter, payload: PullRequest) -> None:
        wanted, pushed = payload
        writer.write(len(wanted), COUNT_BITS)
        for fingerprint in wanted:
            writer.write(fingerprint, 64)
        writer.write(len(pushed), COUNT_BITS)
        for record in pushed:
            write_record(writer, record)

    def read(self, reader: BitReader) -> PullRequest:
        wanted = tuple(reader.read(64) for _ in range(reader.read(COUNT_BITS)))
        pushed = tuple(read_record(reader) for _ in range(reader.read(COUNT_BITS)))
        return wanted, pushed


class KVRecordsCodec(PayloadCodec):
    """Wire form of alice's reply: the requested records, counted."""

    def write(self, writer: BitWriter, payload: tuple[KVRecord, ...]) -> None:
        writer.write(len(payload), COUNT_BITS)
        for record in payload:
            write_record(writer, record)

    def read(self, reader: BitReader) -> tuple[KVRecord, ...]:
        return tuple(read_record(reader) for _ in range(reader.read(COUNT_BITS)))


def pull_request_bits(wanted: Sequence[int], pushed: Sequence[KVRecord]) -> int:
    """Exact charged size of the pull frame."""
    return COUNT_BITS + 64 * len(wanted) + records_bits(pushed)


def kv_context(options: "ReconcileOptions") -> SetReconContext:
    """The shared sketch context a kv session derives from its options.

    The universe is fixed (64-bit fingerprints); a custom estimator factory
    is rejected because the live estimators come from the replicas' sketch
    stores, which only know the default family.
    """
    universe = options.universe_size or FINGERPRINT_UNIVERSE
    if universe != FINGERPRINT_UNIVERSE:
        raise ParameterError(
            "kv sessions reconcile 64-bit record fingerprints; leave "
            "universe_size unset or pass 2**64"
        )
    if options.estimator_factory is not None:
        raise ParameterError(
            "kv sessions serve estimators from the replicas' sketch stores "
            "and do not accept a custom estimator_factory"
        )
    return SetReconContext(
        universe,
        options.seed,
        options.num_hashes,
        options.backend,
        safety_factor=options.safety_factor,
    )


def _view(replica: "VersionedKV", ctx: SetReconContext) -> StoreView:
    config = SketchConfig(
        universe_size=ctx.universe_size,
        seed=ctx.seed,
        num_hashes=ctx.num_hashes,
        backend=ctx.backend,
        safety_factor=ctx.safety_factor,
    )
    return replica.view_for(config)


def kv_alice_known(
    replica: "VersionedKV",
    difference_bound: int,
    ctx: SetReconContext,
    *,
    self_describing: bool = False,
) -> PartyGenerator:
    """Alice's side: live IBLT out, pull request in, records back out."""
    if difference_bound < 0:
        raise ParameterError("difference_bound must be non-negative")
    view = _view(replica, ctx)
    # copy(): the receiver owns the payload object on in-memory transports,
    # and the live table must never leave the store's control.
    table = view.table(difference_bound).copy()
    yield Send(
        "kv fingerprint IBLT",
        ibf_message_bits(ctx, difference_bound, view.size),
        payload=(table, view.set_hash, view.size),
        codec=IBFMessageCodec(ctx, difference_bound, self_describing),
    )
    request = yield Receive(KVPullCodec())
    if request is END_OF_SESSION:
        return aborted_outcome()
    wanted, pushed = request
    records = replica.records_for(wanted)
    yield Send(
        "kv records",
        records_bits(records),
        payload=records,
        codec=KVRecordsCodec(),
    )
    return PartyOutcome(
        True,
        details={
            "kv_apply": pushed,
            "kv_sent": len(records),
            "served_from_store": True,
        },
    )


def kv_bob_known(
    replica: "VersionedKV",
    difference_bound: int | None,
    ctx: SetReconContext,
    *,
    self_describing: bool = False,
) -> PartyGenerator:
    """Bob's side: subtract, peel, verify, then pull the differing records."""
    view = _view(replica, ctx)
    payload = yield Receive(IBFMessageCodec(ctx, difference_bound, self_describing))
    if payload is END_OF_SESSION:
        return aborted_outcome()
    alice_table, alice_hash, alice_size = payload
    bob_table = view.table_for_params(alice_table.params)
    difference_table = alice_table.subtract(bob_table)
    decode = difference_table.try_decode()
    if not decode.success:
        return PartyOutcome(
            False, details={"failure": "iblt-peel", "served_from_store": True}
        )
    recovered_hash = view.hash_with(decode.positive, decode.negative)
    recovered_size = view.size + len(decode.positive) - len(decode.negative)
    if recovered_hash != alice_hash or recovered_size != alice_size:
        return PartyOutcome(
            False, details={"failure": "verification-hash", "served_from_store": True}
        )
    # Sorted for a canonical wire image: the same difference always yields
    # byte-identical phase-two frames on every transport.
    wanted = tuple(sorted(decode.positive))
    pushed = replica.records_for(tuple(sorted(decode.negative)))
    yield Send(
        "kv pull",
        pull_request_bits(wanted, pushed),
        payload=(wanted, pushed),
        codec=KVPullCodec(),
    )
    reply = yield Receive(KVRecordsCodec())
    if reply is END_OF_SESSION:
        return aborted_outcome()
    return PartyOutcome(
        True,
        details={
            "kv_apply": reply,
            "kv_pushed": len(pushed),
            "difference_found": decode.symmetric_difference_size(),
            "failure": None,
            "served_from_store": True,
        },
    )


def kv_alice_unknown(replica: "VersionedKV", ctx: SetReconContext) -> PartyGenerator:
    """Alice with unknown ``d``: merge live estimators, size the table."""
    view = _view(replica, ctx)
    bob_estimator = yield Receive(ctx.estimator_codec())
    if bob_estimator is END_OF_SESSION:
        return aborted_outcome()
    estimate = bob_estimator.merge(view.estimator(side=2)).query()
    bound = max(1, int(round(ctx.safety_factor * estimate)) + 1)
    outcome = yield from kv_alice_known(replica, bound, ctx, self_describing=True)
    outcome.details.update(estimated_difference=estimate, difference_bound_used=bound)
    return outcome


def kv_bob_unknown(replica: "VersionedKV", ctx: SetReconContext) -> PartyGenerator:
    """Bob with unknown ``d``: live estimator out, then the known-d flow."""
    view = _view(replica, ctx)
    estimator = view.estimator(side=1)
    yield Send(
        "difference estimator",
        estimator.size_bits,
        payload=estimator,
        codec=ctx.estimator_codec(),
    )
    outcome = yield from kv_bob_known(replica, None, ctx, self_describing=True)
    return outcome


def kv_parties(
    alice: "VersionedKV",
    bob: "VersionedKV",
    difference_bound: int | None,
    ctx: SetReconContext,
) -> PartyPair:
    """Both sides of one gossip round (known or unknown ``d``)."""
    if difference_bound is None:
        return kv_alice_unknown(alice, ctx), kv_bob_unknown(bob, ctx)
    return (
        kv_alice_known(alice, difference_bound, ctx),
        kv_bob_known(bob, difference_bound, ctx),
    )
