"""Seeded peer selection for anti-entropy gossip rounds.

Peer choice is pure splitmix64 arithmetic over ``(seed, round, initiator)``
-- no :mod:`random` state anywhere -- so a cluster run is a deterministic
function of its seed: the same schedule replays in tests, in benchmarks,
and across the simulated and live drivers.

Two policies:

* ``"uniform"`` -- classic epidemic gossip: each round the initiator picks
  a peer uniformly (pseudo-randomly) among the other live nodes.
* ``"stale"`` -- least-recently-synced: pick the live peer this initiator
  has not gossiped with for longest (ties broken by the same seeded
  arithmetic), the deterministic cousin of Demers-style rumor aging that
  bounds how long any pair can stay unsynced.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

from repro.errors import ParameterError
from repro.hashing import derive_seed
from repro.hashing.mix import MASK64, mix64

#: The selection policies :class:`GossipScheduler` knows.
POLICIES = ("uniform", "stale")


def _name_hash(name: str) -> int:
    return int.from_bytes(
        hashlib.blake2b(
            name.encode("utf-8"), digest_size=8, person=b"repro-kv-peer"
        ).digest(),
        "big",
    )


class GossipScheduler:
    """Deterministic peer selection for one cluster run.

    Parameters
    ----------
    seed:
        Schedule seed; independent draws are derived per (round, initiator).
    policy:
        ``"uniform"`` or ``"stale"`` (least-recently-synced).
    """

    def __init__(self, seed: int = 0, policy: str = "uniform") -> None:
        if policy not in POLICIES:
            raise ParameterError(f"unknown gossip policy {policy!r}; known: {POLICIES}")
        self.seed = derive_seed(seed, "gossip-schedule")
        self.policy = policy
        self._last_synced: dict[tuple[str, str], int] = {}
        self._tick = 0

    def _draw(self, round_index: int, initiator: str, peer: str) -> int:
        value = mix64((self.seed ^ _name_hash(initiator)) & MASK64)
        value = mix64(value ^ (round_index & MASK64))
        return mix64(value ^ _name_hash(peer))

    def select_peer(
        self, initiator: str, round_index: int, candidates: Sequence[str]
    ) -> str:
        """Pick this round's gossip peer among the live ``candidates``.

        ``candidates`` is the current membership (minus the initiator);
        passing it per call is what lets the schedule follow joins and
        crashes without rebuilding the scheduler.
        """
        peers = sorted(name for name in candidates if name != initiator)
        if not peers:
            raise ParameterError(f"no gossip candidates for {initiator!r}")
        if self.policy == "uniform":
            draw = self._draw(round_index, initiator, "uniform")
            return peers[draw % len(peers)]
        # "stale": oldest last-synced tick first, seeded draw as tie-break.
        return min(
            peers,
            key=lambda peer: (
                self._last_synced.get((initiator, peer), -1),
                self._draw(round_index, initiator, peer),
            ),
        )

    def record_sync(self, initiator: str, peer: str) -> None:
        """Mark a completed round (feeds the ``"stale"`` policy both ways)."""
        self._tick += 1
        self._last_synced[(initiator, peer)] = self._tick
        self._last_synced[(peer, initiator)] = self._tick
