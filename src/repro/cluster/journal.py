"""The append-only record journal backing a :class:`~repro.cluster.VersionedKV`.

One journal file per replica, one JSON line per *applied* record::

    {"key": "user:7", "version": 12, "writer": 3, "value": "..."}

Replaying the journal through the replica's LWW merge rebuilds the exact
pre-crash state (the merge is idempotent, so records superseded later in
the file are simply overwritten again in order).  The crash model matches
:class:`~repro.store.journal.UpdateJournal`: appends are flushed per entry,
a torn trailing line is tolerated, and a malformed interior line raises
:class:`~repro.errors.ClusterError` because everything after it is suspect.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Iterable

from repro.cluster.records import KVRecord
from repro.errors import ClusterError


class RecordJournal:
    """Append-only log of applied records for one replica.

    Parameters
    ----------
    path:
        The journal file (created on first append).
    fsync:
        Force every append to stable storage; off by default, matching the
        sketch store's "survive process death" durability bar.
    """

    def __init__(self, path: Path | str, *, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._handle: IO[str] | None = None

    # -- writing --------------------------------------------------------------------

    def _repair_torn_tail(self) -> None:
        """Truncate a partial trailing line before the first append.

        A crash mid-append leaves the file without a final newline; opening
        in append mode would then concatenate the next record onto the torn
        fragment, turning a tolerated tail into fatal interior corruption.
        """
        if not self.path.exists():
            return
        data = self.path.read_bytes()
        if not data or data.endswith(b"\n"):
            return
        with open(self.path, "r+b") as handle:
            handle.truncate(data.rfind(b"\n") + 1)

    def append(self, record: KVRecord) -> None:
        """Durably record one applied record before it mutates the replica."""
        line = json.dumps(record.to_wire(), separators=(",", ":"), sort_keys=True)
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._repair_torn_tail()
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(line + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    # -- reading --------------------------------------------------------------------

    def records(self) -> list[KVRecord]:
        """Every parseable record in append order, tolerating a torn tail.

        A line that fails to parse is dropped when it is the last one (the
        torn write of a crash mid-append) and raises :class:`ClusterError`
        anywhere else.
        """
        if not self.path.exists():
            return []
        lines = self.path.read_text(encoding="utf-8").splitlines()
        parsed: list[KVRecord] = []
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                parsed.append(KVRecord.from_wire(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                if index == len(lines) - 1:
                    break  # torn tail: the crash interrupted this append
                raise ClusterError(
                    f"corrupt journal entry at {self.path}:{index + 1}: {exc}"
                ) from exc
        return parsed

    # -- maintenance ----------------------------------------------------------------

    def compact(self, records: Iterable[KVRecord]) -> None:
        """Rewrite the journal to exactly the given (merged) records.

        Atomic (temp file + ``os.replace``): a crash during compaction
        leaves either the old or the new journal, never a mix.
        """
        self.close()
        temp = self.path.with_suffix(self.path.suffix + ".tmp")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(temp, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(
                    json.dumps(record.to_wire(), separators=(",", ":"), sort_keys=True)
                    + "\n"
                )
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(temp, self.path)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def unlink(self) -> None:
        """Remove the journal file."""
        self.close()
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
