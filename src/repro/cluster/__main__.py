"""CLI entry point: ``python -m repro.cluster``.

Five subcommands for driving live cluster nodes (and one simulated demo):

* ``node`` -- run one :class:`~repro.cluster.node.ClusterNode` until
  SIGTERM/SIGINT, optionally journaled so a killed node recovers its state
  on restart;
* ``put`` / ``delete`` -- write through a running node;
* ``digest`` -- print a node's canonical state digest (equal digests ==
  converged replicas);
* ``gossip`` -- tell one node to run a gossip round with a peer;
* ``sim`` -- run the deterministic simulated cluster to convergence and
  print the per-round accounting table.

Example::

    python -m repro.cluster node --node-id 0 --port 9701 --journal /tmp/n0.jsonl &
    python -m repro.cluster node --node-id 1 --port 9702 --journal /tmp/n1.jsonl &
    python -m repro.cluster put --port 9701 --key user:7 --value hello
    python -m repro.cluster gossip --port 9702 --peer-port 9701
    python -m repro.cluster digest --port 9701
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro.bench.reporting import format_table
from repro.cluster.cluster import Cluster
from repro.cluster.node import (
    DELETE_LABEL,
    DIGEST_LABEL,
    GOSSIP_LABEL,
    PUT_LABEL,
    ClusterNode,
    acontrol,
)
from repro.cluster.replica import VersionedKV
from repro.errors import ReproError
from repro.protocols.options import ReconcileOptions
from repro.service.fleet import install_signal_drain, remove_signal_drain

DEFAULT_SEED = 2018


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster", description=__doc__.splitlines()[0]
    )
    commands = parser.add_subparsers(dest="command", required=True)

    node = commands.add_parser("node", help="run one live cluster node")
    node.add_argument("--node-id", type=int, required=True,
                      help="this replica's writer id (unique per cluster)")
    node.add_argument("--host", default="127.0.0.1")
    node.add_argument("--port", type=int, default=0,
                      help="listen port (0 picks a free one; see the banner)")
    node.add_argument("--seed", type=int, default=DEFAULT_SEED,
                      help="cluster-wide fingerprint/sketch seed")
    node.add_argument("--journal", default=None, metavar="FILE",
                      help="record journal; a restarted node replays it")
    node.add_argument("--difference-bound", type=int, default=None,
                      help="fixed per-round sketch bound (omit: estimator-sized)")
    node.add_argument("--drain-deadline", type=float, default=5.0,
                      metavar="SECONDS",
                      help="how long the SIGTERM drain waits (default 5)")

    for verb, help_text in (
        ("put", "write a key through a running node"),
        ("delete", "delete a key through a running node"),
        ("digest", "print a node's state digest"),
        ("gossip", "tell a node to gossip with a peer"),
    ):
        sub = commands.add_parser(verb, help=help_text)
        sub.add_argument("--host", default="127.0.0.1")
        sub.add_argument("--port", type=int, required=True)
        if verb in ("put", "delete"):
            sub.add_argument("--key", required=True)
        if verb == "put":
            sub.add_argument("--value", required=True)
        if verb == "gossip":
            sub.add_argument("--peer-host", default="127.0.0.1")
            sub.add_argument("--peer-port", type=int, required=True)

    sim = commands.add_parser("sim", help="run the simulated cluster demo")
    sim.add_argument("--nodes", type=int, default=8)
    sim.add_argument("--seed", type=int, default=DEFAULT_SEED)
    sim.add_argument("--writes", type=int, default=6,
                     help="planted per-node writes before gossip starts")
    sim.add_argument("--difference-bound", type=int, default=32)
    sim.add_argument("--policy", default="uniform", choices=("uniform", "stale"))
    return parser


async def _node(args: argparse.Namespace) -> None:
    replica = VersionedKV(
        args.node_id, seed=args.seed, journal_path=args.journal
    )
    options = ReconcileOptions(
        seed=args.seed, difference_bound=args.difference_bound
    )
    async with ClusterNode(
        f"node{args.node_id}",
        replica,
        host=args.host,
        port=args.port,
        options=options,
        drain_deadline=args.drain_deadline,
    ) as node:
        print(
            f"kv node {args.node_id} serving on {node.host}:{node.port} "
            f"({len(replica)} records)",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        installed = install_signal_drain(loop, stop.set)
        serve_task = asyncio.ensure_future(node.serve_forever())
        try:
            stop_wait = asyncio.ensure_future(stop.wait())
            try:
                await asyncio.wait(
                    {serve_task, stop_wait}, return_when=asyncio.FIRST_COMPLETED
                )
            finally:
                stop_wait.cancel()
            print("draining...", flush=True)
            summary = await node.adrain(args.drain_deadline)
            print(
                f"drained: {summary['drained']} finished, "
                f"{summary['aborted']} aborted",
                flush=True,
            )
        finally:
            serve_task.cancel()
            try:
                await serve_task
            except (asyncio.CancelledError, ReproError):
                pass
            remove_signal_drain(loop, installed)


async def _control(args: argparse.Namespace) -> int:
    if args.command == "put":
        reply = await acontrol(
            args.host, args.port, PUT_LABEL, {"key": args.key, "value": args.value}
        )
        print(f"put {args.key!r} at version {reply['version']}")
    elif args.command == "delete":
        reply = await acontrol(
            args.host, args.port, DELETE_LABEL, {"key": args.key}
        )
        print(f"deleted {args.key!r} at version {reply['version']}")
    elif args.command == "digest":
        reply = await acontrol(args.host, args.port, DIGEST_LABEL, {})
        print(json.dumps(reply))
    else:  # gossip
        reply = await acontrol(
            args.host,
            args.port,
            GOSSIP_LABEL,
            {"host": args.peer_host, "port": args.peer_port},
        )
        print(
            f"gossiped with {reply['peer']}: {reply['bits']} bits, "
            f"{reply['applied']} records applied, digest {reply['digest']}"
        )
    return 0


def _sim(args: argparse.Namespace) -> int:
    cluster = Cluster(
        args.nodes,
        seed=args.seed,
        difference_bound=args.difference_bound,
        policy=args.policy,
    )
    for index, name in enumerate(cluster.node_names):
        for write in range(args.writes):
            cluster.put(name, f"{name}-key{write}", f"value-{index}-{write}")
    report = cluster.run_until_converged()
    print(format_table(cluster.metrics.round_rows(), title="gossip rounds"))
    status = "converged" if report.converged else "NOT converged"
    print(
        f"{status}: {report.node_count} nodes in {report.rounds} round(s), "
        f"{report.sessions} sessions, {report.total_bits} bits"
    )
    return 0 if report.converged else 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "node":
            asyncio.run(_node(args))
            return 0
        if args.command == "sim":
            return _sim(args)
        return asyncio.run(_control(args))
    except KeyboardInterrupt:
        return 130
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
