"""Replicated last-writer-wins KV store converging by anti-entropy gossip.

The N-party topology on top of the library's pairwise sessions: each node
is a :class:`VersionedKV` replica whose records map to 64-bit fingerprints,
each gossip round is one two-phase ``kv`` session (set reconciliation over
the fingerprints, then a value fetch), and deterministic LWW merge makes
the rounds commute -- so an epidemic schedule converges every replica to
byte-identical state in O(d) bits per round instead of full state.

Entry points:

* :class:`Cluster` -- the deterministic simulated loop (tests, benchmarks);
* :class:`ClusterNode` -- a live node on the asyncio service stack;
* ``python -m repro.cluster`` -- node/put/digest/gossip/sim CLI.
"""

from repro.cluster.cluster import Cluster
from repro.cluster.gossip import POLICIES, GossipScheduler
from repro.cluster.journal import RecordJournal
from repro.cluster.metrics import ClusterMetrics, ConvergenceReport, GossipSessionRecord
from repro.cluster.node import ClusterNode, acontrol
from repro.cluster.records import (
    FINGERPRINT_UNIVERSE,
    KVRecord,
    record_bits,
    record_fingerprint,
    records_bits,
    state_digest,
)
from repro.cluster.replica import VersionedKV

__all__ = [
    "FINGERPRINT_UNIVERSE",
    "POLICIES",
    "Cluster",
    "ClusterMetrics",
    "ClusterNode",
    "ConvergenceReport",
    "GossipScheduler",
    "GossipSessionRecord",
    "KVRecord",
    "RecordJournal",
    "VersionedKV",
    "acontrol",
    "record_bits",
    "record_fingerprint",
    "records_bits",
    "state_digest",
]
