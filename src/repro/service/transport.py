"""Asyncio endpoint of a protocol session: frames over a stream pair.

:class:`AsyncSocketTransport` is the event-loop sibling of the blocking
:class:`~repro.protocols.transports.SocketTransport`.  Both speak the exact
frame format defined in :mod:`repro.protocols.transports` (the packing and
parsing helpers are shared, so the two cannot drift): a small uncharged
header carrying sender role, transcript label, claimed ``size_bits`` and
payload length, followed by the codec-encoded payload bytes.  A blocking
client therefore interoperates with the asyncio server and vice versa.

:func:`run_party_async` mirrors :func:`~repro.protocols.transports.run_party`
for coroutines: it drives one party generator, reconstructing the transcript
from the frames both endpoints observe, and always sends a FIN on the way
out so the peer's pending read fails fast instead of hanging.

The transport additionally counts raw wire bytes in each direction
(``bytes_sent`` / ``bytes_received``, headers included) -- the service
metrics report these against the bits the transcript charged -- and accepts
a ``latency`` knob that simulates one-way wire delay before each frame
(used by the throughput benchmark to model WAN clients; zero by default).
"""

from __future__ import annotations

import asyncio

from repro.comm import Transcript
from repro.errors import ParameterError, ReconciliationError
from repro.protocols.party import (
    END_OF_SESSION,
    PartyGenerator,
    PartyOutcome,
    Receive,
    Send,
)
from repro.protocols.transports import (
    FRAME_FIN,
    FRAME_HEADER,
    FRAME_MESSAGE,
    Frame,
    MessageMeasurement,
    _encode_and_measure,
    assemble_frame,
    enable_nodelay,
    outcome_from_stop,
    pack_frame,
    parse_frame_header,
)
from repro.protocols.wire import WireError


def frame_from_bytes(data: bytes) -> Frame:
    """Parse one *complete* frame from raw bytes (header plus exact body).

    The fleet supervisor reads a connection's first frame with raw socket
    recvs before handing the descriptor to a worker; the worker rebuilds
    the frame from those bytes with this helper, so the handed-off stream
    starts exactly where the supervisor stopped reading.
    """
    if len(data) < FRAME_HEADER.size:
        raise ReconciliationError(
            f"truncated frame: {len(data)} bytes is shorter than the header"
        )
    kind, sender_len, label_len, size_bits, payload_len = parse_frame_header(
        data[: FRAME_HEADER.size]
    )
    body = data[FRAME_HEADER.size :]
    expected = sender_len + label_len + payload_len
    if len(body) != expected:
        raise ReconciliationError(
            f"frame body is {len(body)} bytes; the header promised {expected}"
        )
    return assemble_frame(kind, sender_len, label_len, size_bits, body)


class AsyncSocketTransport:
    """One endpoint of a protocol session over an asyncio stream pair.

    Parameters
    ----------
    reader, writer:
        The connected :class:`asyncio.StreamReader` / ``StreamWriter``.
    role:
        ``"alice"`` or ``"bob"`` -- stamped on every outgoing frame so both
        endpoints rebuild identical transcripts.
    strict:
        Enforce the byte budget (measured bytes <= charged ``size_bits``
        plus documented framing) on every sent message.
    latency:
        Simulated one-way wire delay in seconds, awaited before each frame
        is written.  Only benchmarks and tests set this.
    """

    name = "async-socket"

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        role: str,
        strict: bool = True,
        latency: float = 0.0,
    ) -> None:
        if role not in ("alice", "bob"):
            raise ParameterError("role must be 'alice' or 'bob'")
        self.reader = reader
        self.writer = writer
        self.role = role
        self.strict = strict
        self.latency = latency
        self.measurements: list[MessageMeasurement] = []
        self.bytes_sent = 0
        self.bytes_received = 0
        sock = writer.get_extra_info("socket")
        if sock is not None:
            enable_nodelay(sock)

    # -- frame I/O ------------------------------------------------------------------

    async def send_frame(
        self, kind: int, label: str = "", size_bits: int = 0, payload: bytes = b""
    ) -> None:
        """Write one raw frame (control frames use this directly)."""
        if self.latency:
            await asyncio.sleep(self.latency)
        data = pack_frame(kind, self.role, label, size_bits, payload)
        try:
            self.writer.write(data)
            await self.writer.drain()
        except (OSError, ConnectionError) as exc:
            raise ReconciliationError(f"socket send failed: {exc}") from exc
        self.bytes_sent += len(data)

    async def receive_frame(self) -> Frame:
        """Read one complete frame (clean errors on EOF or truncation)."""
        try:
            header = await self.reader.readexactly(FRAME_HEADER.size)
            kind, sender_len, label_len, size_bits, payload_len = parse_frame_header(
                header
            )
            body = await self.reader.readexactly(sender_len + label_len + payload_len)
        except asyncio.IncompleteReadError as exc:
            raise ReconciliationError(
                "peer closed the connection mid-frame"
            ) from exc
        except (OSError, ConnectionError) as exc:
            raise ReconciliationError(f"socket receive failed: {exc}") from exc
        self.bytes_received += len(header) + len(body)
        return assemble_frame(kind, sender_len, label_len, size_bits, body)

    async def send_message(self, send: Send) -> None:
        data = _encode_and_measure(
            self.role, send, self.measurements, self.strict, self.name
        )
        await self.send_frame(FRAME_MESSAGE, send.label, send.size_bits, data)

    async def send_fin(self) -> None:
        await self.send_frame(FRAME_FIN)

    async def receive_message(self) -> tuple[str, str, int, bytes] | None:
        """The next frame as ``(sender, label, size_bits, data)``; ``None`` on FIN."""
        frame = await self.receive_frame()
        if frame.kind == FRAME_FIN:
            return None
        if frame.kind != FRAME_MESSAGE:
            raise ReconciliationError(
                f"unexpected frame kind {frame.kind} mid-session"
            )
        return frame.sender, frame.label, frame.size_bits, frame.payload

    async def aclose(self) -> None:
        """Close the underlying stream, swallowing teardown races."""
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (OSError, ConnectionError):
            pass


async def run_party_async(
    party: PartyGenerator,
    transport: AsyncSocketTransport,
    transcript: Transcript | None = None,
) -> tuple[PartyOutcome, Transcript]:
    """Drive one party generator over an asyncio stream.

    The coroutine twin of :func:`repro.protocols.transports.run_party`:
    returns the party's outcome and the transcript this endpoint observed
    (identical, message for message, to the peer's).
    """
    transcript = transcript if transcript is not None else Transcript()
    try:
        outcome = await _drive_party_async(party, transport, transcript)
    finally:
        # Always tell the peer we are done -- including when the party or a
        # codec raised -- so its pending read fails fast instead of hanging.
        try:
            await transport.send_fin()
        except ReconciliationError:
            pass  # peer already gone; the primary error (if any) propagates
    return outcome, transcript


async def _drive_party_async(
    party: PartyGenerator, transport: AsyncSocketTransport, transcript: Transcript
) -> PartyOutcome:
    peer_finished = False
    value = None
    try:
        command = party.send(None)
        while True:
            if isinstance(command, Send):
                await transport.send_message(command)
                transcript.send(
                    transport.role, command.label, command.size_bits, command.payload
                )
                value = None
            elif isinstance(command, Receive):
                if peer_finished:
                    value = END_OF_SESSION
                else:
                    frame = await transport.receive_message()
                    if frame is None:
                        peer_finished = True
                        value = END_OF_SESSION
                    else:
                        sender, label, size_bits, data = frame
                        if command.codec is None:
                            raise WireError(
                                f"receiver provided no codec for message {label!r}"
                            )
                        payload = command.codec.decode(data)
                        transcript.send(sender, label, size_bits, payload)
                        value = payload
            else:
                raise ReconciliationError(
                    f"party yielded {command!r}; expected Send or Receive"
                )
            command = party.send(value)
    except StopIteration as stop:
        return outcome_from_stop(stop.value)
