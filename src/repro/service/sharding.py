"""Sharded reconciliation: split one huge instance into key-prefix shards.

A reconciliation over ``n = 10^5`` elements with ``d`` differences does not
have to run as one monolithic session: hashing every key with the splitmix64
finalizer and bucketing on the top ``b`` bits of the mixed value yields
``2^b`` *shards* that partition both parties' data identically (the mixing
seed is shared), so each shard is an independent reconciliation instance
with an expected ``d / 2^b`` differences -- the balls-and-bins load split
that tames hashing-based structures.  The engine here:

* partitions sets (by element), sets-of-sets (by a child-content
  fingerprint) and binary tables (by row) into shards.  Content sharding
  sends the two versions of a *modified* child to different shards, so each
  shard sees it as an unpartnered insertion/deletion: protocols that pay
  per-child for unmatched children (``naive``, ``multiround``) shard
  robustly, while ``iblt_of_iblts``/``cascading`` -- whose child sketches
  assume similar pairs -- need child sketches sized for whole children;
* runs the per-shard sessions -- serially, on a process pool
  (CPU-bound decodes like CPI), or concurrently against a sync server
  (:func:`repro.service.client.areconcile_sharded`);
* scales the difference bound per shard (``ceil(shard_safety * d / 2^b)``)
  and, instead of failing the whole reconciliation when one shard's decode
  fails, *resplits* that shard one prefix bit deeper -- shard ``i`` at depth
  ``b`` splits exactly into shards ``2i`` and ``2i + 1`` at depth ``b + 1``
  with fresh derived randomness -- until :attr:`ShardPlan.max_shard_bits`;
* merges the per-shard results into one
  :class:`~repro.comm.result.ReconciliationResult` whose transcript is the
  concatenation of every session transcript (failed attempts included --
  those bits really crossed the wire), so the aggregate bit accounting is
  exactly the sum of the shard transcripts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Callable, Iterable

from repro.comm import ReconciliationResult, Transcript
from repro.core.setsofsets.types import SetOfSets
from repro.db.table import BinaryTable
from repro.errors import ParameterError, ReconciliationError
from repro.hashing import derive_seed
from repro.hashing.mix import HAS_NUMPY, MASK64, fingerprint64, mix64
from repro.protocols import registry
from repro.protocols.options import ReconcileOptions

#: Label mixed into the top-level seed to derive the shard-partition salt.
_PARTITION_LABEL = "service-shard-partition"


# ---------------------------------------------------------------------------
# Shard assignment: top-b bits of the mixed 64-bit key
# ---------------------------------------------------------------------------


@lru_cache(maxsize=64)
def partition_salt(seed: int) -> int:
    """The shared 64-bit salt both parties mix into shard assignment.

    Cached: the scalar sharding loops call :func:`shard_of` once per key,
    and one BLAKE2b digest per key would dominate the partitioning.
    """
    return derive_seed(seed, _PARTITION_LABEL) & MASK64


def shard_of(key: int, shard_bits: int, seed: int) -> int:
    """The shard index of one element key at depth ``shard_bits``.

    Uses the *top* ``shard_bits`` bits of the mixed value, which makes shard
    assignment prefix-consistent: the keys of shard ``i`` at depth ``b``
    land exactly in shards ``2i`` and ``2i + 1`` at depth ``b + 1`` -- the
    property the recursive resplit relies on.
    """
    if shard_bits == 0:
        return 0
    mixed = mix64(fingerprint64(key) ^ partition_salt(seed))
    return mixed >> (64 - shard_bits)


def child_shard_key(child: Iterable[int]) -> int:
    """An order-independent 64-bit fingerprint of one child set's content.

    Sets-of-sets (and binary tables, whose rows are child sets) shard by
    child content.  A child that differs between the parties fingerprints
    differently on each side, so the pair shows up as one deletion in one
    shard and one insertion in another -- each shard still reconciles
    independently and the union of shards recovers the full parent.
    """
    folded = 0
    count = 0
    for element in child:
        folded ^= mix64(fingerprint64(element) + 1)
        count += 1
    return mix64(folded ^ count)


def partition_set(items: Iterable[int], shard_bits: int, seed: int) -> list[set[int]]:
    """Partition element keys into ``2^shard_bits`` shards (vectorized when
    NumPy is available and every key fits 64 bits)."""
    shards: list[set[int]] = [set() for _ in range(1 << shard_bits)]
    if shard_bits == 0:
        shards[0].update(items)
        return shards
    items = list(items)
    if HAS_NUMPY and items and all(0 <= key < (1 << 64) for key in items):
        import numpy as np

        from repro.hashing.mix import mix64_array

        keys = np.fromiter(items, dtype=np.uint64, count=len(items))
        mixed = mix64_array(keys ^ np.uint64(partition_salt(seed)))
        indices = (mixed >> np.uint64(64 - shard_bits)).astype(np.int64)
        for key, index in zip(items, indices.tolist()):
            shards[index].add(key)
        return shards
    for key in items:
        shards[shard_of(key, shard_bits, seed)].add(key)
    return shards


def shard_input(data: Any, shard_bits: int, seed: int) -> list[Any]:
    """Partition one protocol input into ``2^shard_bits`` same-typed inputs."""
    if isinstance(data, SetOfSets):
        buckets: list[list[frozenset[int]]] = [[] for _ in range(1 << shard_bits)]
        for child in data.children:
            buckets[shard_of(child_shard_key(child), shard_bits, seed)].append(child)
        return [SetOfSets(bucket) for bucket in buckets]
    if isinstance(data, BinaryTable):
        buckets = [[] for _ in range(1 << shard_bits)]
        for row in data.rows():
            buckets[shard_of(child_shard_key(row), shard_bits, seed)].append(row)
        return [BinaryTable(data.columns, bucket) for bucket in buckets]
    if isinstance(data, (set, frozenset)):
        return partition_set(data, shard_bits, seed)
    raise ParameterError(
        f"cannot shard input of type {type(data).__name__}; "
        "supported: set, SetOfSets, BinaryTable"
    )


def split_shard(data: Any, bits: int, index: int, seed: int) -> tuple[Any, Any]:
    """Split one depth-``bits`` shard into its two depth-``bits + 1`` children.

    Prefix consistency of :func:`shard_of` guarantees every key of shard
    ``index`` lands in child ``2 * index`` or ``2 * index + 1``; the split is
    decided by the next prefix bit of the *same* mixed value (the original
    partition salt), so re-sharding the full input at depth ``bits + 1``
    would produce exactly these children.
    """
    if isinstance(data, SetOfSets):
        halves: tuple[list, list] = ([], [])
        for child in data.children:
            halves[shard_of(child_shard_key(child), bits + 1, seed) & 1].append(child)
        return SetOfSets(halves[0]), SetOfSets(halves[1])
    if isinstance(data, BinaryTable):
        halves = ([], [])
        for row in data.rows():
            halves[shard_of(child_shard_key(row), bits + 1, seed) & 1].append(row)
        return BinaryTable(data.columns, halves[0]), BinaryTable(data.columns, halves[1])
    if isinstance(data, (set, frozenset)):
        halves = (set(), set())
        for key in data:
            halves[shard_of(key, bits + 1, seed) & 1].add(key)
        return halves
    raise ParameterError(
        f"cannot shard input of type {type(data).__name__}; "
        "supported: set, SetOfSets, BinaryTable"
    )


def merge_recovered(pieces: list[Any], template: Any) -> Any:
    """Combine per-shard recovered values back into one input-shaped value."""
    if isinstance(template, SetOfSets):
        children: list[frozenset[int]] = []
        for piece in pieces:
            children.extend(piece.children)
        return SetOfSets(children)
    if isinstance(template, BinaryTable):
        merged = BinaryTable(template.columns)
        for piece in pieces:
            for row in piece.rows():
                merged.add_row(row)
        return merged
    merged_set: set[int] = set()
    for piece in pieces:
        merged_set.update(piece)
    return merged_set


# ---------------------------------------------------------------------------
# The shard plan: per-shard options and the resplit schedule
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardPlan:
    """How one reconciliation is split into shards.

    Attributes
    ----------
    protocol:
        Registered protocol name run inside every shard.
    shard_bits:
        Initial prefix depth ``b`` (``2^b`` shards).
    max_shard_bits:
        Deepest prefix the resplit recovery may reach; a shard still failing
        at this depth fails the whole reconciliation.
    shard_safety:
        Multiplier on the expected per-shard difference ``d / 2^b`` when
        scaling a known difference bound down to one shard (slack for the
        balls-and-bins imbalance).
    options:
        The top-level options; per-shard options are derived via
        :meth:`options_for`.
    """

    protocol: str
    shard_bits: int
    options: ReconcileOptions
    max_shard_bits: int = 12
    shard_safety: float = 2.0

    def __post_init__(self) -> None:
        if not 0 <= self.shard_bits <= self.max_shard_bits:
            raise ParameterError(
                "need 0 <= shard_bits <= max_shard_bits "
                f"(got {self.shard_bits} / {self.max_shard_bits})"
            )
        if self.max_shard_bits > 24:
            raise ParameterError("max_shard_bits above 24 is surely a mistake")
        if self.shard_safety < 1.0:
            raise ParameterError("shard_safety must be at least 1.0")

    def shard_bound(self, bits: int) -> int | None:
        """The difference bound one shard at depth ``bits`` runs with.

        Scaled with the expected load down to the *initial* depth only:
        resplit children (``bits > shard_bits``) keep the parent's bound, so
        every resplit doubles the capacity-to-load ratio of the retries and
        a failing shard converges in O(log) splits instead of chasing its
        own shrinking bound.
        """
        if self.options.difference_bound is None:
            return None
        effective_bits = min(bits, self.shard_bits)
        return max(
            1,
            math.ceil(
                self.shard_safety
                * self.options.difference_bound
                / (1 << effective_bits)
            ),
        )

    def options_for(self, bits: int, index: int) -> ReconcileOptions:
        """Per-shard options: derived seed (fresh randomness per depth, so a
        resplit retries with new hash functions) and a scaled bound."""
        return self.options.merged(
            seed=derive_seed(self.options.seed, "service-shard", bits, index),
            difference_bound=self.shard_bound(bits),
        )


# ---------------------------------------------------------------------------
# Running the plan locally (serial or process pool)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardSession:
    """One finished per-shard session (possibly a failed, later-resplit one)."""

    bits: int
    index: int
    success: bool
    recovered: Any
    transcript: Transcript
    attempts: int
    #: True when this session failed but its shard was resplit one bit deeper
    #: -- its keys are covered by two child sessions, so the failure is a
    #: recovered retry, not a terminal one.
    resplit: bool = False

    @property
    def prefix_order(self) -> tuple[int, int]:
        """Sort key putting sessions in key-prefix order, parents first."""
        return (self.index << (64 - self.bits) if self.bits else 0, self.bits)


def _run_shard(
    protocol: str,
    alice_shard: Any,
    bob_shard: Any,
    options: ReconcileOptions,
) -> tuple[bool, Any, int, list[tuple[str, str, int]]]:
    """One in-memory per-shard session, transcript stripped to its metadata.

    Module-level (and returning only picklable pieces) so process pools can
    run it; payload objects never cross the process boundary, the accounting
    does.
    """
    result = registry.reconcile(
        alice_shard, bob_shard, protocol=protocol, options=options
    )
    meta = [
        (message.sender, message.label, message.size_bits)
        for message in result.transcript.messages
    ]
    return result.success, result.recovered, result.attempts, meta


def _transcript_from_meta(meta: list[tuple[str, str, int]]) -> Transcript:
    transcript = Transcript()
    for sender, label, size_bits in meta:
        transcript.send(sender, label, size_bits)
    return transcript


def merge_sessions(
    sessions: list[ShardSession], template: Any
) -> ReconciliationResult:
    """Combine every per-shard session into one aggregate result.

    The merged transcript concatenates the session transcripts in key-prefix
    order (failed ones included), so ``merged.total_bits`` equals the sum of
    the per-session ``total_bits`` exactly.
    """
    ordered = sorted(sessions, key=lambda session: session.prefix_order)
    transcript = Transcript()
    for session in ordered:
        transcript.extend(session.transcript)
    # A resplit failure is covered by its two child sessions; success requires
    # every *terminal* session (not resplit) to have succeeded.
    success = all(session.success or session.resplit for session in ordered)
    recovered = None
    if success:
        pieces = [
            session.recovered
            for session in ordered
            if session.success and session.recovered is not None
        ]
        # An alice-role push has nothing to recover on this side; report
        # None like the unsharded API, not an empty collection.
        if pieces:
            recovered = merge_recovered(pieces, template)
    failed = [
        {"shard_bits": s.bits, "shard_index": s.index}
        for s in ordered
        if not s.success and not s.resplit
    ]
    return ReconciliationResult(
        success,
        recovered,
        transcript,
        attempts=sum(session.attempts for session in ordered),
        details={
            "sharded": True,
            "sessions": len(ordered),
            "resplits": sum(1 for s in ordered if s.resplit),
            "failed_shards": failed,
            "per_shard": [
                {
                    "shard_bits": s.bits,
                    "shard_index": s.index,
                    "success": s.success,
                    "resplit": s.resplit,
                    "bits": s.transcript.total_bits,
                    "rounds": s.transcript.num_rounds,
                }
                for s in ordered
            ],
        },
    )


def reconcile_sharded(
    alice: Any,
    bob: Any,
    *,
    protocol: str,
    shard_bits: int = 4,
    options: ReconcileOptions | None = None,
    max_shard_bits: int = 12,
    shard_safety: float = 2.0,
    processes: int | None = None,
    metrics: Any | None = None,
    **overrides: Any,
) -> ReconciliationResult:
    """Reconcile ``alice`` and ``bob`` shard by shard (both inputs local).

    Runs one in-memory session per shard -- serially by default, or on a
    ``processes``-worker process pool when the per-shard decode is CPU-bound
    (the CPI path) -- resplitting any shard whose session fails.  See
    :class:`ShardPlan` for the knobs and :func:`merge_sessions` for the
    aggregate accounting contract.  To run the shards against a remote sync
    server instead, use :func:`repro.service.client.areconcile_sharded`.
    """
    spec = registry.get(protocol)
    merged_options = (options if options is not None else ReconcileOptions()).merged(
        **overrides
    )
    plan = ShardPlan(
        protocol,
        shard_bits,
        merged_options,
        max_shard_bits=max_shard_bits,
        shard_safety=shard_safety,
    )
    seed = merged_options.seed
    alice_shards = shard_input(alice, shard_bits, seed)
    bob_shards = shard_input(bob, shard_bits, seed)
    pending = [
        (shard_bits, index, alice_shards[index], bob_shards[index])
        for index in range(1 << shard_bits)
    ]
    sessions: list[ShardSession] = []

    def finish(
        bits: int,
        index: int,
        alice_shard: Any,
        bob_shard: Any,
        success: bool,
        recovered: Any,
        attempts: int,
        transcript: Transcript,
    ) -> None:
        resplit = not success and bits < plan.max_shard_bits
        session = ShardSession(
            bits, index, success, recovered, transcript, attempts, resplit=resplit
        )
        if metrics is not None:
            from repro.service.metrics import SessionRecord

            metrics.record_session(
                SessionRecord(
                    protocol,
                    "local",
                    success,
                    rounds=transcript.num_rounds,
                    messages=len(transcript),
                    bits_charged=transcript.total_bits,
                    attempts=attempts,
                    sharded=True,
                )
            )
        if resplit:
            if metrics is not None:
                metrics.record_resplit()
            alice_halves = split_shard(alice_shard, bits, index, seed)
            bob_halves = split_shard(bob_shard, bits, index, seed)
            for half in (0, 1):
                pending.append(
                    (bits + 1, 2 * index + half, alice_halves[half], bob_halves[half])
                )
        sessions.append(session)

    if processes is not None and processes > 1:
        _run_pending_pooled(plan, pending, finish, processes)
    else:
        while pending:
            bits, index, alice_shard, bob_shard = pending.pop(0)
            result = registry.reconcile(
                alice_shard,
                bob_shard,
                protocol=protocol,
                options=plan.options_for(bits, index),
            )
            finish(
                bits, index, alice_shard, bob_shard,
                result.success, result.recovered, result.attempts, result.transcript,
            )
    del spec  # looked up early only to fail fast on unknown protocols
    return merge_sessions(sessions, bob)


def _run_pending_pooled(
    plan: ShardPlan,
    pending: list[tuple[int, int, Any, Any]],
    finish: Callable[..., None],
    processes: int,
) -> None:
    """Drain the shard queue on a process pool, wave by wave.

    Each wave submits every currently-pending shard; failures enqueue their
    resplit children, which form the next (much smaller) wave.
    """
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=processes) as pool:
        while pending:
            wave, pending[:] = list(pending), []
            futures = [
                (
                    bits,
                    index,
                    alice_shard,
                    bob_shard,
                    pool.submit(
                        _run_shard,
                        plan.protocol,
                        alice_shard,
                        bob_shard,
                        plan.options_for(bits, index),
                    ),
                )
                for bits, index, alice_shard, bob_shard in wave
            ]
            for bits, index, alice_shard, bob_shard, future in futures:
                try:
                    success, recovered, attempts, meta = future.result()
                except Exception as exc:  # worker died: surface cleanly
                    raise ReconciliationError(
                        f"shard ({bits}, {index}) worker failed: {exc}"
                    ) from exc
                finish(
                    bits, index, alice_shard, bob_shard,
                    success, recovered, attempts, _transcript_from_meta(meta),
                )
