"""The asyncio sync server: many concurrent sessions on one event loop.

:class:`SyncServer` accepts any number of simultaneous connections.  Each
connection starts with the hello/ack handshake of :mod:`repro.service.hello`
(protocol name, client role, wire options, public size statistics, optional
shard restriction), after which the server builds its side of the named
protocol from the registry and drives it with
:func:`~repro.service.transport.run_party_async` -- one server-side party
per connection, all multiplexed on a single event loop.  Blocking
:class:`~repro.protocols.transports.SocketTransport` clients interoperate:
the frame format is shared.

The server is data-oriented: it is constructed with a mapping from protocol
name to the dataset it serves for that protocol (its "side" of every
session).  By default the server plays the role the client did not ask for
-- a ``role="bob"`` client recovers the server's dataset, a ``role="alice"``
client pushes its own.

Per-session failures (a party raising, a codec over-running its budget, a
client vanishing mid-frame) are contained: the connection is torn down, the
failure is recorded in the shared :class:`~repro.service.metrics.ServiceMetrics`,
and the server keeps serving.  A ``stats`` control request returns the
metrics report without running a session.

Concurrency note: the per-session ``field_kernel`` choice travels inside the
options and is honored by the party builders themselves; the server
deliberately does *not* use the scoped :func:`repro.field.use_kernel`
override, whose process-global stack would leak across sessions interleaved
on the event loop.
"""

from __future__ import annotations

import asyncio
import json
import logging
import socket as socket_module
from typing import Any, Awaitable, Callable, Mapping

from repro.errors import ReproError, ServiceError, StoreError
from repro.service.admission import AdmissionController, rejection_message
from repro.protocols import registry
from repro.protocols.options import ReconcileOptions
from repro.protocols.transports import FRAME_CONTROL, Frame
from repro.service.hello import (
    ACK_LABEL,
    HELLO_LABEL,
    MUTATE_ACK_LABEL,
    MUTATE_LABEL,
    SERVED_INPUT_KINDS,
    STATS_LABEL,
    Hello,
    PeerStats,
    ack_payload,
    error_payload,
    mutate_ack_payload,
    options_from_wire,
    parse_mutate,
    placeholder_input,
)
from repro.service.metrics import ServiceMetrics, SessionRecord
from repro.service.sharding import shard_input
from repro.service.transport import (
    AsyncSocketTransport,
    frame_from_bytes,
    run_party_async,
)
from repro.store import AntiEntropyLoop, SketchConfig, SketchStore, StoreView
from repro.store.parties import stored_ibf_party

#: How many (protocol, shard_bits, seed) partitions the server memoizes, so a
#: sharded sync fanning out over one dataset partitions it once, not per
#: connection.
_SHARD_CACHE_SLOTS = 8

logger = logging.getLogger(__name__)


class SyncServer:
    """Serve reconciliation sessions for a set of named datasets.

    Parameters
    ----------
    datasets:
        ``protocol name -> server-side input``.  The input type must match
        the protocol's registered ``input_kind`` (a set, a
        :class:`~repro.core.setsofsets.types.SetOfSets`, or a
        :class:`~repro.db.table.BinaryTable` reduced through a set-of-sets
        protocol); only protocols with an entry are served.
    host, port:
        Listen address; port 0 picks a free port (read :attr:`port` after
        :meth:`start`).
    strict:
        Enforce the byte-budget accounting on every outgoing message.
    latency:
        Simulated one-way wire delay per frame (benchmarks only).
    metrics:
        Optional shared :class:`ServiceMetrics`; one is created otherwise.
    store:
        Optional :class:`~repro.store.SketchStore`.  When present, ``ibf``
        sessions over plain set datasets are answered from the store's live
        sketches (O(d) per sync instead of O(n) re-encoding), ``mutate``
        control frames are accepted, and -- for a durable store -- the
        anti-entropy loop can persist dirty datasets in the background.
        The store's metrics sink defaults to this server's.
    anti_entropy_interval:
        Seconds between background snapshot sweeps; requires a durable
        ``store``.  ``None`` (default) disables the loop.
    drain_deadline:
        How long :meth:`aclose` waits for in-flight sessions before
        cancelling them (see :meth:`adrain`).
    admission:
        Optional :class:`~repro.service.admission.AdmissionController`.
        When present, session hellos beyond the per-client rate or the
        in-flight cap are shed with a coded hello-ack error frame instead
        of being served (stats and mutate requests bypass admission).  In
        a fleet the *supervisor* runs admission; single-server deployments
        pass a controller here.
    on_mutation:
        Optional callback invoked after every applied mutation with
        ``(dataset_name, inserted_keys, deleted_keys)`` -- *before* the
        mutate-ack is sent.  Fleet workers use it to report dataset deltas
        to the supervisor, which keeps the authoritative copies it hands a
        restarted worker.
    on_outcome:
        Optional callback invoked with ``(protocol_name, server_role,
        outcome)`` after every completed session party.  Protocols whose
        parties are pure (the ``kv`` gossip round) return the state change
        in the outcome's details; this hook is where the owner applies it
        (see :class:`~repro.cluster.node.ClusterNode`).
    control_handlers:
        Optional ``label -> async handler`` mapping for extra control
        frames.  A matching frame's payload is passed to the handler and
        the returned bytes are sent back as ``"<label>-ack"``; cluster
        nodes register their digest/gossip/put verbs here without the
        server knowing anything about them.
    """

    def __init__(
        self,
        datasets: Mapping[str, Any],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        strict: bool = True,
        latency: float = 0.0,
        metrics: ServiceMetrics | None = None,
        store: SketchStore | None = None,
        anti_entropy_interval: float | None = None,
        drain_deadline: float = 5.0,
        admission: AdmissionController | None = None,
        on_mutation: Callable[[str, list[int], list[int]], None] | None = None,
        on_outcome: Callable[[str, str, Any], None] | None = None,
        control_handlers: Mapping[str, Callable[[bytes], Awaitable[bytes]]]
        | None = None,
    ) -> None:
        self.datasets = dict(datasets)
        self.host = host
        self._requested_port = port
        self.strict = strict
        self.latency = latency
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.store = store
        if store is not None and store.metrics is None:
            store.metrics = self.metrics
        if anti_entropy_interval is not None and (store is None or not store.durable):
            raise ServiceError(
                "anti_entropy_interval requires a durable store "
                "(SketchStore with a root directory)"
            )
        self.anti_entropy_interval = anti_entropy_interval
        self.drain_deadline = drain_deadline
        self.admission = admission
        self.on_mutation = on_mutation
        self.on_outcome = on_outcome
        self.control_handlers = dict(control_handlers or {})
        self._server: asyncio.AbstractServer | None = None
        self._shard_cache: dict[tuple[str, int, int], list[Any]] = {}
        self._sessions: set[asyncio.Task] = set()
        self._anti_entropy_task: asyncio.Task | None = None

    # -- lifecycle ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections (does not block)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        if self.anti_entropy_interval is not None:
            loop = AntiEntropyLoop(
                self.store, interval=self.anti_entropy_interval, metrics=self.metrics
            )
            self._anti_entropy_task = asyncio.create_task(loop.run())

    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        if self._server is None:
            raise ServiceError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def adrain(self, deadline: float | None = None) -> dict[str, int]:
        """Gracefully shut down: stop accepting, finish in-flight sessions.

        The listener closes first (new connections are refused), then
        in-flight sessions get up to ``deadline`` seconds to complete;
        stragglers are cancelled.  Returns ``{"drained": ..., "aborted": ...}``
        and records the same split in the metrics.  A durable store is
        flushed so nothing rides only on the journal after shutdown.
        """
        if deadline is None:
            deadline = self.drain_deadline
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._anti_entropy_task is not None:
            self._anti_entropy_task.cancel()
            try:
                await self._anti_entropy_task
            except asyncio.CancelledError:
                pass
            self._anti_entropy_task = None
        pending = {task for task in self._sessions if not task.done()}
        drained = aborted = 0
        if pending:
            done, still_running = await asyncio.wait(pending, timeout=deadline)
            drained, aborted = len(done), len(still_running)
            for task in still_running:
                task.cancel()
            if still_running:
                await asyncio.gather(*still_running, return_exceptions=True)
        self.metrics.record_drain(drained, aborted)
        if self.store is not None and self.store.durable:
            try:
                self.store.flush()
            except (OSError, ReproError):
                pass  # journal still protects the unflushed state
        return {"drained": drained, "aborted": aborted}

    async def aclose(self) -> None:
        await self.adrain(self.drain_deadline)

    async def __aenter__(self) -> "SyncServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()

    # -- per-connection handling ----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # The outgoing role is unknown until the hello names the client's;
        # it is rewritten below before any session frame is sent.
        transport = AsyncSocketTransport(
            reader, writer, "bob", strict=self.strict, latency=self.latency
        )
        await self._serve_connection(transport)

    async def serve_handoff(
        self, sock: socket_module.socket, initial: bytes = b""
    ) -> None:
        """Serve one already-accepted connection (the fleet worker path).

        ``sock`` is a connected socket received from the supervisor via FD
        passing; ``initial`` holds the raw bytes of the first frame the
        supervisor already consumed while routing, replayed here so the
        session transcript is byte-identical to a directly-accepted one.
        """
        try:
            reader, writer = await asyncio.open_connection(sock=sock)
        except OSError:
            sock.close()  # peer vanished between accept and handoff
            return
        transport = AsyncSocketTransport(
            reader, writer, "bob", strict=self.strict, latency=self.latency
        )
        first_frame = None
        if initial:
            transport.bytes_received += len(initial)
            try:
                first_frame = frame_from_bytes(initial)
            except ReproError:
                await transport.aclose()
                return  # the supervisor only hands off frames it parsed
        await self._serve_connection(transport, first_frame)

    async def _serve_connection(
        self, transport: AsyncSocketTransport, first_frame: Frame | None = None
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._sessions.add(task)
            task.add_done_callback(self._sessions.discard)
        try:
            await self._serve_one(transport, first_frame)
        except ReproError:
            pass  # recorded where it happened; the connection is done either way
        except asyncio.CancelledError:
            return  # server shutting down mid-session; nothing left to serve
        except (OSError, EOFError):
            pass  # client vanished mid-frame; the session record has the failure
        except Exception:
            # Anything else is a bug, not a client misbehaving: keep serving,
            # but say so instead of swallowing it.
            logger.exception("unexpected error while serving a connection")
        finally:
            await transport.aclose()

    async def _serve_one(
        self, transport: AsyncSocketTransport, first_frame: Frame | None = None
    ) -> None:
        frame = (
            first_frame if first_frame is not None else await transport.receive_frame()
        )
        if frame.kind == FRAME_CONTROL and frame.label == MUTATE_LABEL:
            await self._handle_mutate(transport, frame)
            return
        if frame.kind == FRAME_CONTROL and frame.label in self.control_handlers:
            reply = await self.control_handlers[frame.label](frame.payload)
            await transport.send_frame(
                FRAME_CONTROL, f"{frame.label}-ack", payload=reply
            )
            return
        if frame.kind != FRAME_CONTROL or frame.label != HELLO_LABEL:
            await self._refuse(transport, "expected a hello control frame")
            return
        try:
            hello = Hello.from_json(frame.payload)
        except ServiceError as exc:
            await self._refuse(transport, str(exc))
            return

        if hello.want_stats:
            self.metrics.record_stats_request()
            await transport.send_frame(
                FRAME_CONTROL,
                STATS_LABEL,
                payload=json.dumps(self.metrics.report()).encode(),
            )
            return

        if self.admission is not None:
            peer = transport.writer.get_extra_info("peername")
            client = peer[0] if isinstance(peer, tuple) else str(peer or "unknown")
            code = self.admission.try_admit(client)
            if code is not None:
                self.metrics.record_shed(code)
                await self._refuse(transport, rejection_message(code), code=code)
                return
            try:
                await self._serve_session(transport, hello)
            finally:
                self.admission.release()
            return
        await self._serve_session(transport, hello)

    async def _serve_session(
        self, transport: AsyncSocketTransport, hello: Hello
    ) -> None:
        self.metrics.record_start()
        try:
            spec, dataset, options = self._negotiate(hello)
        except ServiceError as exc:
            self.metrics.record_rejected()
            await self._refuse(transport, str(exc))
            return

        server_role = "bob" if hello.role == "alice" else "alice"
        transport.role = server_role
        client_stats = PeerStats.from_wire(hello.stats)
        await transport.send_frame(
            FRAME_CONTROL, ACK_LABEL, payload=ack_payload(options, PeerStats.of(dataset))
        )

        outcome = None
        error: str | None = None
        transcript = None
        try:
            view = self._store_view(spec, hello, options, dataset)
            if view is not None:
                party = stored_ibf_party(server_role, view, options.difference_bound)
            else:
                placeholder = placeholder_input(spec.input_kind, client_stats)
                if server_role == "alice":
                    build_alice, build_bob = dataset, placeholder
                else:
                    build_alice, build_bob = placeholder, dataset
                alice_party, bob_party = spec.build(build_alice, build_bob, options)
                party = alice_party if server_role == "alice" else bob_party
            outcome, transcript = await run_party_async(party, transport)
            if self.on_outcome is not None:
                self.on_outcome(spec.name, server_role, outcome)
        except asyncio.CancelledError:
            raise
        except (ReproError, OSError, EOFError) as exc:
            # The failure modes a session can legitimately produce: protocol
            # and codec errors, and the peer disappearing.  Anything else
            # propagates unlabelled and is logged by the connection handler.
            error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            self.metrics.record_session(
                SessionRecord(
                    spec.name,
                    server_role,
                    bool(outcome is not None and outcome.success),
                    rounds=transcript.num_rounds if transcript is not None else 0,
                    messages=len(transcript) if transcript is not None else 0,
                    bits_charged=(
                        transcript.total_bits if transcript is not None else 0
                    ),
                    wire_bytes_sent=transport.bytes_sent,
                    wire_bytes_received=transport.bytes_received,
                    attempts=outcome.attempts if outcome is not None else 1,
                    sharded=hello.shard is not None,
                    error=error,
                )
            )

    def _store_view(
        self, spec: Any, hello: Hello, options: Any, dataset: Any
    ) -> StoreView | None:
        """The store-backed view for this session, or ``None`` to build the
        party from scratch.

        Only the plain-set ``ibf`` protocol over the full (unsharded)
        dataset is served from the store: shards are ephemeral subsets with
        no maintained sketch, and a custom estimator factory would diverge
        from the store's live estimators.
        """
        if (
            self.store is None
            or spec.name != "ibf"
            or hello.shard is not None
            or not isinstance(dataset, (set, frozenset))
            or options.estimator_factory is not None
        ):
            return None
        config = SketchConfig.from_options(options)
        return StoreView(self.store, hello.protocol, config, dataset)

    async def _handle_mutate(
        self, transport: AsyncSocketTransport, frame: Frame
    ) -> None:
        """Apply a client-sent delta to a dataset and its live sketches.

        The store is updated *before* the dataset: a store failure leaves
        the dataset untouched (and invalidates the store entry), so the two
        can never silently diverge.
        """
        try:
            name, inserted, deleted = parse_mutate(frame.payload)
            if self.store is None:
                raise ServiceError("this server has no sketch store; cannot mutate")
            dataset = self.datasets.get(name)
            if dataset is None:
                raise ServiceError(f"no dataset configured for {name!r}")
            if not isinstance(dataset, set) or isinstance(dataset, frozenset):
                raise ServiceError(
                    f"dataset {name!r} is a {type(dataset).__name__}; "
                    "only mutable set datasets accept mutations"
                )
            eff_ins = sorted(key for key in inserted if key not in dataset)
            eff_del = sorted(key for key in deleted if key in dataset)
            self.store.apply(name, eff_ins, eff_del, dataset=dataset)
            dataset.difference_update(eff_del)
            dataset.update(eff_ins)
        except (ServiceError, StoreError) as exc:
            self.metrics.record_mutation_rejected()
            await transport.send_frame(
                FRAME_CONTROL, MUTATE_ACK_LABEL, payload=error_payload(str(exc))
            )
            return
        self.metrics.record_mutation(len(eff_ins), len(eff_del))
        if self.on_mutation is not None:
            self.on_mutation(name, eff_ins, eff_del)
        await transport.send_frame(
            FRAME_CONTROL,
            MUTATE_ACK_LABEL,
            payload=mutate_ack_payload(len(eff_ins), len(eff_del), len(dataset)),
        )

    def _negotiate(
        self, hello: Hello
    ) -> tuple[type[registry.Protocol], Any, ReconcileOptions]:
        """Resolve the hello into ``(spec, dataset, options)`` or refuse."""
        if not hello.protocol:
            raise ServiceError("hello names no protocol")
        if hello.protocol not in registry.names():
            raise ServiceError(f"unknown protocol {hello.protocol!r}")
        spec = registry.get(hello.protocol)
        if spec.input_kind not in SERVED_INPUT_KINDS:
            raise ServiceError(
                f"protocol {hello.protocol!r} has input kind {spec.input_kind!r}, "
                f"which this service does not serve"
            )
        if hello.protocol not in self.datasets:
            raise ServiceError(f"no dataset configured for {hello.protocol!r}")
        options = options_from_wire(hello.options)
        dataset = self.datasets[hello.protocol]
        self._check_dataset_kind(hello.protocol, spec.input_kind, dataset)
        if hello.shard is not None:
            dataset = self._shard_dataset(hello, dataset)
        return spec, dataset, options

    @staticmethod
    def _check_dataset_kind(protocol: str, input_kind: str, dataset: Any) -> None:
        """Refuse at hello time when the configured dataset cannot feed the
        protocol's party builder (a misconfiguration would otherwise escape
        as an AttributeError after a successful ack)."""
        if input_kind == "set":
            valid = isinstance(dataset, (set, frozenset))
        elif input_kind == "kv":
            # The kv parties read the replica's merge/view seam (duck-typed
            # so the service layer needs no import from repro.cluster).
            valid = all(
                hasattr(dataset, name) for name in ("merge_records", "view_for")
            )
        else:  # set_of_sets: the builders read the public size statistics
            valid = all(
                hasattr(dataset, name)
                for name in ("num_children", "total_elements", "max_child_size")
            )
        if not valid:
            raise ServiceError(
                f"dataset configured for {protocol!r} is a "
                f"{type(dataset).__name__}, which cannot feed a protocol "
                f"with input kind {input_kind!r}"
            )

    def _shard_dataset(self, hello: Hello, dataset: Any) -> Any:
        shard = hello.shard
        if not 0 <= shard.index < (1 << shard.bits):
            raise ServiceError(
                f"shard index {shard.index} out of range for {shard.bits} bits"
            )
        key = (hello.protocol, shard.bits, shard.seed)
        partitioned = self._shard_cache.get(key)
        if partitioned is None:
            try:
                partitioned = shard_input(dataset, shard.bits, shard.seed)
            except ReproError as exc:
                raise ServiceError(f"dataset cannot be sharded: {exc}") from exc
            if len(self._shard_cache) >= _SHARD_CACHE_SLOTS:
                self._shard_cache.pop(next(iter(self._shard_cache)))
            self._shard_cache[key] = partitioned
        return partitioned[shard.index]

    async def _refuse(
        self, transport: AsyncSocketTransport, message: str, code: str | None = None
    ) -> None:
        try:
            await transport.send_frame(
                FRAME_CONTROL, ACK_LABEL, payload=error_payload(message, code)
            )
        except ReproError:
            pass  # client already gone
