"""The aclient API: run protocol sessions against a :class:`SyncServer`.

:func:`areconcile` is the network twin of :func:`repro.reconcile`: connect,
send the hello (protocol name, desired role, wire options, public size
statistics), build the local party from the registry once the ack arrives,
and drive it over an :class:`~repro.service.transport.AsyncSocketTransport`.
The default ``role="bob"`` recovers the server's dataset; ``role="alice"``
pushes the client's data to the server instead.

:func:`areconcile_sharded` runs one *sharded* reconciliation against the
server: the client partitions its input into ``2^shard_bits`` key-prefix
shards (:mod:`repro.service.sharding`), opens one concurrent session per
shard (each hello carries the shard descriptor so the server restricts its
dataset to the same shard), resplits failed shards one prefix bit deeper,
and merges every per-shard result into a single
:class:`~repro.comm.result.ReconciliationResult` whose transcript bits are
exactly the sum over the shard sessions.

Blocking convenience wrappers (:func:`reconcile_with_server`,
:func:`fetch_stats_blocking`) cover scripts and the CLI.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.comm import ReconciliationResult
from repro.errors import ServiceError
from repro.protocols import registry
from repro.protocols.options import ReconcileOptions
from repro.protocols.transports import FRAME_CONTROL
from repro.service.hello import (
    ACK_LABEL,
    HELLO_LABEL,
    MUTATE_ACK_LABEL,
    MUTATE_LABEL,
    STATS_LABEL,
    Hello,
    PeerStats,
    ShardRequest,
    mutate_payload,
    options_to_wire,
    parse_ack,
    parse_mutate_ack,
    placeholder_input,
)
from repro.service.sharding import (
    ShardPlan,
    ShardSession,
    merge_sessions,
    shard_input,
    split_shard,
)
from repro.service.transport import AsyncSocketTransport, run_party_async


async def _connect(
    host: str, port: int
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Open a stream to the server, with connect failures in the library's
    error taxonomy instead of a raw ``OSError``."""
    try:
        return await asyncio.open_connection(host, port)
    except OSError as exc:
        raise ServiceError(f"cannot reach the sync server at {host}:{port}: {exc}") from exc


async def areconcile(
    host: str,
    port: int,
    protocol: str,
    data: Any,
    *,
    role: str = "bob",
    options: ReconcileOptions | None = None,
    strict: bool = True,
    latency: float = 0.0,
    shard: ShardRequest | None = None,
    **overrides: Any,
) -> ReconciliationResult:
    """Run one session against the server; returns this endpoint's result.

    With the default ``role="bob"``, ``result.recovered`` is the server's
    dataset (restricted to ``shard`` if one is requested).  Negotiation
    failures raise :class:`~repro.errors.ServiceError`; transport failures
    mid-session raise :class:`~repro.errors.ReconciliationError` like any
    other socket session.
    """
    if role not in ("alice", "bob"):
        raise ServiceError("role must be 'alice' or 'bob'")
    merged = (options if options is not None else ReconcileOptions()).merged(
        **overrides
    )
    spec = registry.get(protocol)
    hello = Hello(
        protocol,
        role,
        options_to_wire(merged),
        PeerStats.of(data).to_wire(),
        shard,
    )
    reader, writer = await _connect(host, port)
    transport = AsyncSocketTransport(
        reader, writer, role, strict=strict, latency=latency
    )
    try:
        await transport.send_frame(FRAME_CONTROL, HELLO_LABEL, payload=hello.to_json())
        frame = await transport.receive_frame()
        if frame.kind != FRAME_CONTROL or frame.label != ACK_LABEL:
            raise ServiceError(
                f"expected a hello-ack, got frame kind {frame.kind} "
                f"label {frame.label!r}"
            )
        acked_options, server_stats = parse_ack(frame.payload)
        placeholder = placeholder_input(spec.input_kind, server_stats)
        if role == "alice":
            build_alice, build_bob = data, placeholder
        else:
            build_alice, build_bob = placeholder, data
        alice_party, bob_party = spec.build(build_alice, build_bob, acked_options)
        party = alice_party if role == "alice" else bob_party
        outcome, transcript = await run_party_async(party, transport)
    finally:
        await transport.aclose()
    return ReconciliationResult(
        outcome.success,
        outcome.recovered,
        transcript,
        attempts=outcome.attempts,
        details={
            **outcome.details,
            "wire_bytes_sent": transport.bytes_sent,
            "wire_bytes_received": transport.bytes_received,
        },
    )


async def afetch_stats(host: str, port: int) -> dict[str, Any]:
    """Fetch the server's aggregate metrics report (the ``/stats`` call)."""
    reader, writer = await _connect(host, port)
    transport = AsyncSocketTransport(reader, writer, "bob")
    try:
        await transport.send_frame(
            FRAME_CONTROL, HELLO_LABEL, payload=Hello(None, want_stats=True).to_json()
        )
        frame = await transport.receive_frame()
        if frame.kind != FRAME_CONTROL or frame.label != STATS_LABEL:
            raise ServiceError(
                f"expected a stats frame, got kind {frame.kind} label {frame.label!r}"
            )
        return json.loads(frame.payload.decode())
    finally:
        await transport.aclose()


async def amutate(
    host: str,
    port: int,
    dataset: str,
    *,
    insert: Any = (),
    delete: Any = (),
) -> dict[str, int]:
    """Apply a delta to a server-side dataset and its live sketches.

    Requires the server to host a :class:`~repro.store.SketchStore`.
    Returns the *effective* delta (keys already present are not
    re-inserted, absent keys are not deleted) plus the dataset's new size.
    A refusal (no store, unknown dataset, immutable dataset, malformed
    keys) raises :class:`~repro.errors.ServiceError`.
    """
    reader, writer = await _connect(host, port)
    transport = AsyncSocketTransport(reader, writer, "bob")
    try:
        await transport.send_frame(
            FRAME_CONTROL,
            MUTATE_LABEL,
            payload=mutate_payload(dataset, insert, delete),
        )
        frame = await transport.receive_frame()
        if frame.kind != FRAME_CONTROL or frame.label != MUTATE_ACK_LABEL:
            raise ServiceError(
                f"expected a mutate-ack, got frame kind {frame.kind} "
                f"label {frame.label!r}"
            )
        return parse_mutate_ack(frame.payload)
    finally:
        await transport.aclose()


async def areconcile_sharded(
    host: str,
    port: int,
    protocol: str,
    data: Any,
    *,
    shard_bits: int = 4,
    role: str = "bob",
    options: ReconcileOptions | None = None,
    max_shard_bits: int = 12,
    shard_safety: float = 2.0,
    concurrency: int = 32,
    strict: bool = True,
    latency: float = 0.0,
    **overrides: Any,
) -> ReconciliationResult:
    """Sharded reconciliation against the server: one session per shard.

    Every shard session runs concurrently (bounded by ``concurrency``); a
    failed shard is resplit one prefix bit deeper -- both sides re-partition
    with the shared salt, so the two halves line up -- and retried with
    fresh derived randomness, until ``max_shard_bits``.
    """
    merged = (options if options is not None else ReconcileOptions()).merged(
        **overrides
    )
    plan = ShardPlan(
        protocol,
        shard_bits,
        merged,
        max_shard_bits=max_shard_bits,
        shard_safety=shard_safety,
    )
    seed = merged.seed
    shards = shard_input(data, shard_bits, seed)
    semaphore = asyncio.Semaphore(max(1, concurrency))
    sessions: list[ShardSession] = []

    async def run_shard(bits: int, index: int, shard_data: Any) -> None:
        async with semaphore:
            result = await areconcile(
                host,
                port,
                protocol,
                shard_data,
                role=role,
                options=plan.options_for(bits, index),
                strict=strict,
                latency=latency,
                shard=ShardRequest(bits, index, seed),
            )
        resplit = not result.success and bits < plan.max_shard_bits
        sessions.append(
            ShardSession(
                bits,
                index,
                result.success,
                result.recovered,
                result.transcript,
                result.attempts,
                resplit=resplit,
            )
        )
        if resplit:
            left, right = split_shard(shard_data, bits, index, seed)
            await asyncio.gather(
                run_shard(bits + 1, 2 * index, left),
                run_shard(bits + 1, 2 * index + 1, right),
            )

    await asyncio.gather(
        *(run_shard(shard_bits, index, shard) for index, shard in enumerate(shards))
    )
    return merge_sessions(sessions, data)


# ---------------------------------------------------------------------------
# Blocking conveniences (scripts, the CLI)
# ---------------------------------------------------------------------------


def reconcile_with_server(*args: Any, **kwargs: Any) -> ReconciliationResult:
    """Blocking wrapper around :func:`areconcile`."""
    return asyncio.run(areconcile(*args, **kwargs))


def fetch_stats_blocking(host: str, port: int) -> dict[str, Any]:
    """Blocking wrapper around :func:`afetch_stats`."""
    return asyncio.run(afetch_stats(host, port))


def mutate_server(*args: Any, **kwargs: Any) -> dict[str, int]:
    """Blocking wrapper around :func:`amutate`."""
    return asyncio.run(amutate(*args, **kwargs))
