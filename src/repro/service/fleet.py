"""The multi-process sync fleet: one supervisor, W :class:`SyncServer` workers.

The single-server :class:`~repro.service.server.SyncServer` multiplexes every
session on one event loop, so its ceiling is one CPU no matter how fast the
compiled tier makes each decode.  The fleet lifts that ceiling with a
supervisor process that owns the listening socket and W worker processes
each running today's server loop:

* the **supervisor** accepts every connection, reads exactly the first
  frame with raw socket recvs (later bytes stay in the kernel buffer, so
  nothing is lost in the handoff), routes on it, and passes the connected
  descriptor to a worker over the control channel with SCM_RIGHTS FD
  passing (``multiprocessing.reduction.send_handle``);
* **store-backed fleets** partition datasets across workers by splitmix64
  prefix (:func:`repro.service.dispatch.owner_of`, reusing the
  :mod:`repro.service.sharding` conventions), so ``mutate`` frames and
  sessions for a dataset always land on the worker holding its live
  sketches and journal partition;
* **storeless fleets** replicate the datasets to every worker and spread
  sessions with least-loaded-of-d dispatch
  (:class:`~repro.service.dispatch.LeastLoadedDispatcher`);
* **admission control** (:mod:`repro.service.admission`) runs in the
  supervisor, before any worker is touched: shed hellos get a coded
  hello-ack error frame and never consume a worker slot -- the fleet
  rejects under overload instead of queueing unboundedly;
* each worker reports per-session completions, dataset mutations, and
  metrics snapshots back over its duplex pipe; ``stats`` requests are
  answered by the supervisor with the :meth:`ServiceMetrics.merge` of
  every worker's snapshot plus its own, with a per-worker breakdown;
* a **crashed worker is restarted** and rejoins: the supervisor holds the
  authoritative dataset copies (updated from mutation reports), hands the
  replacement worker its partition, and the worker's durable store
  recovers the live sketches via snapshot-plus-journal replay;
* ``adrain`` is a **rolling drain** (one worker at a time finishes its
  in-flight sessions and exits) and SIGTERM/SIGINT are wired to it by
  :func:`install_signal_drain`, shared with the single-server CLI path.

The wire protocol is unchanged: clients speak to a fleet exactly as they
speak to a single server, and a served session's transcript is
byte-identical to the single-server one (pinned by the fleet tests).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import multiprocessing
import os
import signal
import socket
from dataclasses import dataclass, field
from multiprocessing import reduction
from typing import Any, Callable, Mapping

from repro.errors import ReproError, ServiceError
from repro.protocols.transports import (
    FRAME_CONTROL,
    FRAME_HEADER,
    pack_frame,
    parse_frame_header,
)
from repro.service.admission import (
    REJECT_AT_CAPACITY,
    AdmissionController,
    AdmissionPolicy,
    rejection_message,
)
from repro.service.dispatch import LeastLoadedDispatcher, owner_of
from repro.service.hello import (
    ACK_LABEL,
    HELLO_LABEL,
    MUTATE_ACK_LABEL,
    MUTATE_LABEL,
    STATS_LABEL,
    Hello,
    error_payload,
    parse_mutate,
)
from repro.service.metrics import ServiceMetrics
from repro.service.server import SyncServer
from repro.service.transport import frame_from_bytes
from repro.store import AntiEntropyLoop, SketchStore

logger = logging.getLogger(__name__)

#: How long a freshly-spawned worker gets to import, warm its store
#: partition, and report ready.
_READY_TIMEOUT = 60.0
#: How long the supervisor waits for one worker's stats snapshot before
#: reporting the fleet without it.
_STATS_TIMEOUT = 10.0


def fleet_supported() -> bool:
    """Whether this platform can run the fleet (POSIX FD passing)."""
    return os.name == "posix" and hasattr(socket, "SCM_RIGHTS")


@dataclass(frozen=True)
class WorkerConfig:
    """Everything one worker process needs (picklable, sent at spawn)."""

    worker_id: int
    datasets: dict[str, Any]
    store_root: str | None = None
    strict: bool = True
    latency: float = 0.0
    drain_deadline: float = 5.0
    anti_entropy_interval: float | None = None


# ---------------------------------------------------------------------------
# Worker process: a SyncServer with no listener, fed over the control channel
# ---------------------------------------------------------------------------


def _worker_main(config: WorkerConfig, conn: Any) -> None:
    """Entry point of one worker process (must stay module-level: spawn
    pickles it by qualified name)."""
    # Workers must not react to the terminal's SIGINT: the supervisor
    # coordinates shutdown over the control channel (drain, then stop).
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        asyncio.run(_worker_body(config, conn))
    finally:
        conn.close()


async def _worker_body(config: WorkerConfig, conn: Any) -> None:
    loop = asyncio.get_running_loop()
    metrics = ServiceMetrics()
    store = SketchStore(config.store_root) if config.store_root else None
    server = SyncServer(
        config.datasets,
        strict=config.strict,
        latency=config.latency,
        metrics=metrics,
        store=store,
        drain_deadline=config.drain_deadline,
        on_mutation=lambda name, ins, dels: _send_quiet(
            conn, {"type": "mutated", "dataset": name, "insert": ins, "delete": dels}
        ),
    )
    if store is not None:
        # Warm every owned set dataset so the live sketch exists (replaying
        # the journal of a previous incarnation if there is one), then
        # flush: with a baseline snapshot on disk, a crash from here on is
        # recoverable by snapshot-plus-journal replay.
        for name, dataset in config.datasets.items():
            if isinstance(dataset, (set, frozenset)):
                store.size_of(name, dataset)
        store.flush()
    anti_entropy_task: asyncio.Task | None = None
    if config.anti_entropy_interval is not None and store is not None and store.durable:
        anti_loop = AntiEntropyLoop(
            store, interval=config.anti_entropy_interval, metrics=metrics
        )
        anti_entropy_task = asyncio.create_task(anti_loop.run())

    stop = asyncio.Event()
    tasks: set[asyncio.Task] = set()

    async def serve_handoff(sock: socket.socket, meta: dict[str, Any]) -> None:
        try:
            await server.serve_handoff(sock, meta.get("initial", b""))
        finally:
            _send_quiet(
                conn, {"type": "done", "admitted": bool(meta.get("admitted"))}
            )

    async def drain(meta: dict[str, Any]) -> None:
        if anti_entropy_task is not None:
            anti_entropy_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await anti_entropy_task
        summary = await server.adrain(meta.get("deadline"))
        _send_quiet(
            conn,
            {
                "type": "drained",
                "summary": summary,
                "snapshot": metrics.snapshot(),
                "report": metrics.report(),
            },
        )
        stop.set()

    def track(coro: Any) -> None:
        task = loop.create_task(coro)
        tasks.add(task)
        task.add_done_callback(tasks.discard)

    def on_control() -> None:
        try:
            while conn.poll():
                message = conn.recv()
                kind = message.get("type")
                if kind == "conn":
                    # The descriptor's SCM_RIGHTS bytes follow the metadata
                    # immediately; consume them before polling again.
                    fd = reduction.recv_handle(conn)
                    track(serve_handoff(socket.socket(fileno=fd), message))
                elif kind == "stats-request":
                    _send_quiet(
                        conn,
                        {
                            "type": "stats",
                            "id": message.get("id"),
                            "snapshot": metrics.snapshot(),
                            "report": metrics.report(),
                        },
                    )
                elif kind == "drain":
                    track(drain(message))
                elif kind == "stop":
                    stop.set()
        except (EOFError, OSError):
            # Supervisor is gone; nothing to serve for, nothing to report to.
            loop.remove_reader(conn.fileno())
            stop.set()

    loop.add_reader(conn.fileno(), on_control)
    _send_quiet(conn, {"type": "ready", "pid": os.getpid()})
    try:
        await stop.wait()
    finally:
        loop.remove_reader(conn.fileno())
        if anti_entropy_task is not None:
            anti_entropy_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await anti_entropy_task
        for task in list(tasks):
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)


def _send_quiet(conn: Any, message: dict[str, Any]) -> None:
    """Send on the control channel, tolerating a vanished supervisor."""
    try:
        conn.send(message)
    except (OSError, ValueError, BrokenPipeError):
        pass


# ---------------------------------------------------------------------------
# Supervisor side
# ---------------------------------------------------------------------------


@dataclass
class _WorkerHandle:
    """The supervisor's view of one worker process."""

    worker_id: int
    process: Any
    conn: Any
    ready: asyncio.Event
    inflight: int = 0
    admitted_inflight: int = 0
    draining: bool = False
    reader_attached: bool = False
    sentinel_attached: bool = False
    stats_futures: dict[int, asyncio.Future] = field(default_factory=dict)
    drained_future: asyncio.Future | None = None
    final_report: dict[str, Any] | None = None
    final_snapshot: dict[str, Any] | None = None

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    @property
    def dispatchable(self) -> bool:
        return self.alive and self.ready.is_set() and not self.draining

    def send_connection(self, message: dict[str, Any], sock: socket.socket) -> None:
        """Metadata first, then the descriptor: the worker consumes the
        SCM_RIGHTS bytes right after parsing the metadata, keeping the
        channel framed."""
        self.conn.send(message)
        reduction.send_handle(self.conn, sock.fileno(), self.process.pid)


class SyncFleet:
    """A supervisor plus ``workers`` :class:`SyncServer` processes.

    Parameters
    ----------
    datasets:
        ``protocol name -> dataset``, exactly as for :class:`SyncServer`.
        With a ``store_root`` the fleet *partitions* them across workers by
        :func:`~repro.service.dispatch.owner_of`; without one every worker
        *replicates* all of them and sessions spread by least-loaded-of-d.
        The supervisor keeps the authoritative copies, updated from worker
        mutation reports, and hands a restarted worker its current
        partition.
    workers:
        Fleet size ``W``.
    store_root:
        Root directory for the durable per-worker sketch stores (worker
        ``i`` uses ``store_root/worker-i``, so a restarted worker finds its
        own snapshots and journal).  Enables ownership routing and
        ``mutate``.
    admission:
        An :class:`~repro.service.admission.AdmissionPolicy` (or a
        prebuilt controller); ``None`` admits everything.
    per_worker_inflight:
        Cap on concurrently dispatched sessions per worker; beyond it the
        supervisor sheds with ``at-capacity`` instead of queueing.
    dispatch_choices:
        The ``d`` of least-loaded-of-d dispatch (replicated fleets).
    restart_workers:
        Respawn a crashed worker with its current partition (default).
    handshake_timeout:
        Seconds the supervisor waits for a connection's first frame.
    """

    def __init__(
        self,
        datasets: Mapping[str, Any],
        *,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        strict: bool = True,
        latency: float = 0.0,
        store_root: str | None = None,
        admission: AdmissionPolicy | AdmissionController | None = None,
        per_worker_inflight: int | None = None,
        dispatch_choices: int = 2,
        seed: int = 2018,
        drain_deadline: float = 5.0,
        handshake_timeout: float = 20.0,
        restart_workers: bool = True,
        anti_entropy_interval: float | None = None,
        metrics: ServiceMetrics | None = None,
    ) -> None:
        if workers < 1:
            raise ServiceError("a fleet needs at least one worker")
        self.datasets = dict(datasets)
        self.workers = workers
        self.host = host
        self._requested_port = port
        self.strict = strict
        self.latency = latency
        self.store_root = store_root
        self.seed = seed
        self.drain_deadline = drain_deadline
        self.handshake_timeout = handshake_timeout
        self.restart_workers = restart_workers
        self.anti_entropy_interval = anti_entropy_interval
        self.per_worker_inflight = per_worker_inflight
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        if isinstance(admission, AdmissionController):
            self.admission: AdmissionController | None = admission
        elif isinstance(admission, AdmissionPolicy) and admission.enabled:
            self.admission = AdmissionController(admission)
        else:
            self.admission = None
        self.partitioned = store_root is not None
        self._dispatcher = (
            None
            if self.partitioned
            else LeastLoadedDispatcher(
                workers,
                choices=dispatch_choices,
                per_worker_budget=per_worker_inflight,
                seed=seed,
            )
        )
        self._context = multiprocessing.get_context("spawn")
        self._handles: dict[int, _WorkerHandle] = {}
        self._listener: socket.socket | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._accept_task: asyncio.Task | None = None
        self._routing: set[asyncio.Task] = set()
        self._background: set[asyncio.Task] = set()
        self._stats_counter = 0
        self._closing = False
        self._drain_summary: dict[str, int] | None = None

    # -- lifecycle ------------------------------------------------------------------

    async def start(self) -> None:
        """Spawn the workers, wait until all report ready, bind, accept."""
        if not fleet_supported():
            raise ServiceError(
                "the sync fleet needs POSIX SCM_RIGHTS descriptor passing; "
                "run a single SyncServer on this platform"
            )
        self._loop = asyncio.get_running_loop()
        for worker_id in range(self.workers):
            self._spawn(worker_id)
        await self.wait_until_ready(_READY_TIMEOUT)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(128)
        listener.setblocking(False)
        self._listener = listener
        self._accept_task = self._loop.create_task(self._accept_loop())

    @property
    def port(self) -> int:
        if self._listener is None:
            raise ServiceError("fleet is not started")
        return int(self._listener.getsockname()[1])

    async def wait_until_ready(self, timeout: float = _READY_TIMEOUT) -> None:
        """Wait until every live worker has reported ready."""
        waiters = [
            handle.ready.wait()
            for handle in self._handles.values()
            if handle.alive and not handle.ready.is_set()
        ]
        if not waiters:
            return
        try:
            await asyncio.wait_for(asyncio.gather(*waiters), timeout)
        except asyncio.TimeoutError as exc:
            raise ServiceError(
                f"fleet workers did not become ready within {timeout}s"
            ) from exc

    async def serve_forever(self) -> None:
        if self._listener is None:
            await self.start()
        # Accepting runs in _accept_task; this just parks until cancelled.
        await asyncio.Event().wait()

    async def adrain(self, deadline: float | None = None) -> dict[str, int]:
        """Rolling drain: stop accepting, then drain workers one at a time.

        Each worker finishes (or aborts at its deadline) its in-flight
        sessions, reports its final metrics snapshot -- folded into the
        supervisor's, so post-shutdown ``report()`` still shows fleet
        totals -- and exits.  Returns the summed drain summary.
        """
        if self._closing:
            return dict(self._drain_summary or {"drained": 0, "aborted": 0})
        self._closing = True
        if deadline is None:
            deadline = self.drain_deadline
        if self._accept_task is not None:
            self._accept_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._accept_task
            self._accept_task = None
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        if self._routing:
            await asyncio.gather(*self._routing, return_exceptions=True)
        totals = {"drained": 0, "aborted": 0}
        for worker_id in sorted(self._handles):
            handle = self._handles[worker_id]
            handle.draining = True
            if not handle.alive:
                continue
            assert self._loop is not None
            handle.drained_future = self._loop.create_future()
            try:
                handle.conn.send({"type": "drain", "deadline": deadline})
                reply = await asyncio.wait_for(
                    handle.drained_future, deadline + _STATS_TIMEOUT
                )
            except (asyncio.TimeoutError, OSError, ValueError):
                handle.process.terminate()
            else:
                summary = reply.get("summary") or {}
                totals["drained"] += int(summary.get("drained", 0))
                totals["aborted"] += int(summary.get("aborted", 0))
                handle.final_snapshot = reply.get("snapshot")
                handle.final_report = reply.get("report")
                if handle.final_snapshot:
                    self.metrics.merge(handle.final_snapshot)
            await self._join_worker(handle, timeout=_STATS_TIMEOUT)
            self._detach(handle)
        self._drain_summary = totals
        return totals

    async def aclose(self) -> None:
        await self.adrain(self.drain_deadline)

    async def __aenter__(self) -> "SyncFleet":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()

    # -- worker management ----------------------------------------------------------

    def _datasets_for(self, worker_id: int) -> dict[str, Any]:
        if not self.partitioned:
            return dict(self.datasets)
        return {
            name: data
            for name, data in self.datasets.items()
            if owner_of(name, self.workers, self.seed) == worker_id
        }

    def _store_root_for(self, worker_id: int) -> str | None:
        if self.store_root is None:
            return None
        return os.path.join(self.store_root, f"worker-{worker_id}")

    def owner_for(self, name: str) -> int:
        """The worker that owns dataset ``name`` (partitioned fleets)."""
        return owner_of(name, self.workers, self.seed)

    def _spawn(self, worker_id: int) -> None:
        assert self._loop is not None
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        config = WorkerConfig(
            worker_id=worker_id,
            datasets=self._datasets_for(worker_id),
            store_root=self._store_root_for(worker_id),
            strict=self.strict,
            latency=self.latency,
            drain_deadline=self.drain_deadline,
            anti_entropy_interval=self.anti_entropy_interval,
        )
        process = self._context.Process(
            target=_worker_main, args=(config, child_conn), daemon=True
        )
        process.start()
        child_conn.close()
        handle = _WorkerHandle(
            worker_id, process, parent_conn, ready=asyncio.Event()
        )
        self._handles[worker_id] = handle
        self._loop.add_reader(
            parent_conn.fileno(), self._on_worker_readable, worker_id
        )
        handle.reader_attached = True
        self._loop.add_reader(process.sentinel, self._on_worker_exit, worker_id)
        handle.sentinel_attached = True

    def _detach(self, handle: _WorkerHandle) -> None:
        assert self._loop is not None
        if handle.reader_attached:
            with contextlib.suppress(OSError, ValueError):
                self._loop.remove_reader(handle.conn.fileno())
            handle.reader_attached = False
        if handle.sentinel_attached:
            with contextlib.suppress(OSError, ValueError):
                self._loop.remove_reader(handle.process.sentinel)
            handle.sentinel_attached = False
        with contextlib.suppress(OSError):
            handle.conn.close()

    async def _join_worker(self, handle: _WorkerHandle, timeout: float) -> None:
        waited = 0.0
        while handle.process.is_alive() and waited < timeout:
            await asyncio.sleep(0.05)
            waited += 0.05
        if handle.process.is_alive():
            handle.process.kill()
        handle.process.join(timeout=1.0)

    def _on_worker_readable(self, worker_id: int) -> None:
        handle = self._handles.get(worker_id)
        if handle is None:
            return
        try:
            while handle.conn.poll():
                self._on_worker_message(handle, handle.conn.recv())
        except (EOFError, OSError):
            if handle.reader_attached:
                assert self._loop is not None
                with contextlib.suppress(OSError, ValueError):
                    self._loop.remove_reader(handle.conn.fileno())
                handle.reader_attached = False

    def _on_worker_message(
        self, handle: _WorkerHandle, message: dict[str, Any]
    ) -> None:
        kind = message.get("type")
        if kind == "ready":
            handle.ready.set()
        elif kind == "done":
            handle.inflight = max(0, handle.inflight - 1)
            if self._dispatcher is not None:
                self._dispatcher.complete(handle.worker_id)
            if message.get("admitted"):
                handle.admitted_inflight = max(0, handle.admitted_inflight - 1)
                if self.admission is not None:
                    self.admission.release()
        elif kind == "mutated":
            dataset = self.datasets.get(message.get("dataset"))
            if isinstance(dataset, set):
                dataset.difference_update(message.get("delete", ()))
                dataset.update(message.get("insert", ()))
        elif kind == "stats":
            future = handle.stats_futures.pop(message.get("id"), None)
            if future is not None and not future.done():
                future.set_result(message)
        elif kind == "drained":
            if handle.drained_future is not None and not handle.drained_future.done():
                handle.drained_future.set_result(message)

    def _on_worker_exit(self, worker_id: int) -> None:
        handle = self._handles.get(worker_id)
        if handle is None:
            return
        if handle.sentinel_attached:
            assert self._loop is not None
            with contextlib.suppress(OSError, ValueError):
                self._loop.remove_reader(handle.process.sentinel)
            handle.sentinel_attached = False
        if self._closing or handle.draining:
            return
        # A real crash: its in-flight sessions died with it.  Give their
        # admission slots back, forget its load, and (by default) respawn
        # it with the supervisor's current view of its partition -- the
        # replacement recovers the live sketches via journal replay.
        logger.warning("fleet worker %d exited unexpectedly; restarting", worker_id)
        self._detach(handle)
        handle.process.join(timeout=1.0)
        if handle.admitted_inflight and self.admission is not None:
            self.admission.release(handle.admitted_inflight)
        if self._dispatcher is not None:
            self._dispatcher.reset(worker_id)
        for future in handle.stats_futures.values():
            if not future.done():
                future.set_exception(ServiceError("worker exited"))
        handle.stats_futures.clear()
        if not self.restart_workers:
            return
        self.metrics.record_worker_restart()
        self._spawn(worker_id)

    # -- accept / route -------------------------------------------------------------

    async def _accept_loop(self) -> None:
        assert self._loop is not None and self._listener is not None
        while True:
            try:
                client, address = await self._loop.sock_accept(self._listener)
            except asyncio.CancelledError:
                raise
            except OSError:
                return  # listener closed under us during shutdown
            client.setblocking(False)
            task = self._loop.create_task(self._route_connection(client, address))
            self._routing.add(task)
            task.add_done_callback(self._routing.discard)

    async def _route_connection(
        self, client: socket.socket, address: tuple[Any, ...]
    ) -> None:
        try:
            await self._route_checked(client, address)
        except asyncio.CancelledError:
            client.close()
            raise
        except Exception:
            logger.exception("unexpected error while routing a connection")
            client.close()

    async def _route_checked(
        self, client: socket.socket, address: tuple[Any, ...]
    ) -> None:
        assert self._loop is not None
        try:
            initial = await asyncio.wait_for(
                self._read_one_frame(client), self.handshake_timeout
            )
            frame = frame_from_bytes(initial)
        except (ReproError, OSError, EOFError, asyncio.TimeoutError):
            # Nothing parseable arrived; there is no frame to answer.
            client.close()
            return

        if frame.kind == FRAME_CONTROL and frame.label == MUTATE_LABEL:
            await self._route_mutate(client, initial, frame.payload)
            return
        if frame.kind != FRAME_CONTROL or frame.label != HELLO_LABEL:
            await self._refuse(
                client, ACK_LABEL, "expected a hello control frame"
            )
            return
        try:
            hello = Hello.from_json(frame.payload)
        except ServiceError as exc:
            await self._refuse(client, ACK_LABEL, str(exc))
            return
        if hello.want_stats:
            await self._serve_stats(client)
            return
        await self._route_session(client, initial, hello, address)

    async def _route_mutate(
        self, client: socket.socket, initial: bytes, payload: bytes
    ) -> None:
        if not self.partitioned:
            self.metrics.record_mutation_rejected()
            await self._refuse(
                client,
                MUTATE_ACK_LABEL,
                "this fleet has no sketch store; cannot mutate",
            )
            return
        try:
            name, _ins, _dels = parse_mutate(payload)
        except ServiceError as exc:
            self.metrics.record_mutation_rejected()
            await self._refuse(client, MUTATE_ACK_LABEL, str(exc))
            return
        handle = self._handles.get(self.owner_for(name))
        if handle is None or not handle.dispatchable:
            self.metrics.record_mutation_rejected()
            await self._refuse(
                client, MUTATE_ACK_LABEL, f"the owner of {name!r} is unavailable"
            )
            return
        self._dispatch(handle, client, initial, admitted=False)

    async def _route_session(
        self,
        client: socket.socket,
        initial: bytes,
        hello: Hello,
        address: tuple[Any, ...],
    ) -> None:
        admitted = False
        if self.admission is not None:
            peer = address[0] if address else "unknown"
            code = self.admission.try_admit(str(peer))
            if code is not None:
                self.metrics.record_shed(code)
                await self._refuse(
                    client, ACK_LABEL, rejection_message(code), code=code
                )
                return
            admitted = True
        handle = self._pick_worker(hello)
        if handle is None:
            if admitted and self.admission is not None:
                self.admission.release()
            self.metrics.record_shed(REJECT_AT_CAPACITY)
            await self._refuse(
                client,
                ACK_LABEL,
                "every fleet worker is at its in-flight budget; retry later",
                code=REJECT_AT_CAPACITY,
            )
            return
        if self._dispatcher is not None:
            self._dispatcher.assign(handle.worker_id)
        self._dispatch(handle, client, initial, admitted=admitted)

    def _pick_worker(self, hello: Hello) -> _WorkerHandle | None:
        if self.partitioned:
            # Ownership is a pure function of the protocol name, so even a
            # hello for an unconfigured protocol routes somewhere -- the
            # owner refuses it exactly as a single server would.
            handle = self._handles.get(self.owner_for(hello.protocol or ""))
            if handle is None or not handle.dispatchable:
                return None
            if (
                self.per_worker_inflight is not None
                and handle.inflight >= self.per_worker_inflight
            ):
                return None
            return handle
        assert self._dispatcher is not None
        eligible = [
            worker_id
            for worker_id, handle in self._handles.items()
            if handle.dispatchable
        ]
        choice = self._dispatcher.pick(eligible)
        return None if choice is None else self._handles.get(choice)

    def _dispatch(
        self,
        handle: _WorkerHandle,
        client: socket.socket,
        initial: bytes,
        *,
        admitted: bool,
    ) -> None:
        handle.inflight += 1
        if admitted:
            handle.admitted_inflight += 1
        self.metrics.record_dispatch()
        try:
            handle.send_connection(
                {"type": "conn", "initial": initial, "admitted": admitted}, client
            )
        except (OSError, ValueError):
            # Worker died between pick and send; the client sees a closed
            # connection and retries -- same as a single-server crash.
            handle.inflight = max(0, handle.inflight - 1)
            if admitted:
                handle.admitted_inflight = max(0, handle.admitted_inflight - 1)
                if self.admission is not None:
                    self.admission.release()
        finally:
            client.close()  # the worker holds its own duplicated descriptor

    # -- supervisor-served control requests -----------------------------------------

    async def _serve_stats(self, client: socket.socket) -> None:
        self.metrics.record_stats_request()
        report = await self.fleet_report()
        await self._send_frame(client, STATS_LABEL, json.dumps(report).encode())
        client.close()

    async def fleet_report(self) -> dict[str, Any]:
        """Fleet-wide metrics: merged worker snapshots plus the supervisor's
        own counters, with a per-worker breakdown under ``"workers"``."""
        merged = ServiceMetrics()
        worker_reports: dict[str, Any] = {}
        for worker_id in sorted(self._handles):
            handle = self._handles[worker_id]
            if handle.final_snapshot is not None:
                # Already drained: its last reported state is final.
                merged.merge(handle.final_snapshot)
                worker_reports[str(worker_id)] = handle.final_report
                continue
            if not handle.dispatchable:
                continue
            reply = await self._request_stats(handle)
            if reply is not None:
                merged.merge(reply.get("snapshot") or {})
                worker_reports[str(worker_id)] = reply.get("report")
        merged.merge(self.metrics.snapshot())
        report = merged.report()
        report["workers"] = worker_reports
        return report

    async def _request_stats(
        self, handle: _WorkerHandle
    ) -> dict[str, Any] | None:
        assert self._loop is not None
        self._stats_counter += 1
        request_id = self._stats_counter
        future: asyncio.Future = self._loop.create_future()
        handle.stats_futures[request_id] = future
        try:
            handle.conn.send({"type": "stats-request", "id": request_id})
            return await asyncio.wait_for(future, _STATS_TIMEOUT)
        except (asyncio.TimeoutError, OSError, ValueError, ServiceError):
            handle.stats_futures.pop(request_id, None)
            return None

    # -- raw-socket frame I/O (pre-handoff) -----------------------------------------

    async def _read_one_frame(self, client: socket.socket) -> bytes:
        assert self._loop is not None
        header = await self._read_exact(client, FRAME_HEADER.size)
        _kind, sender_len, label_len, _bits, payload_len = parse_frame_header(header)
        body = await self._read_exact(client, sender_len + label_len + payload_len)
        return header + body

    async def _read_exact(self, client: socket.socket, count: int) -> bytes:
        assert self._loop is not None
        data = b""
        while len(data) < count:
            chunk = await self._loop.sock_recv(client, count - len(data))
            if not chunk:
                raise EOFError("peer closed the connection mid-frame")
            data += chunk
        return data

    async def _send_frame(
        self, client: socket.socket, label: str, payload: bytes
    ) -> None:
        assert self._loop is not None
        with contextlib.suppress(OSError):
            await self._loop.sock_sendall(
                client, pack_frame(FRAME_CONTROL, "bob", label, 0, payload)
            )

    async def _refuse(
        self,
        client: socket.socket,
        label: str,
        message: str,
        code: str | None = None,
    ) -> None:
        await self._send_frame(client, label, error_payload(message, code))
        client.close()


# ---------------------------------------------------------------------------
# Signal wiring (shared by the fleet and single-server CLI paths)
# ---------------------------------------------------------------------------


def install_signal_drain(
    loop: asyncio.AbstractEventLoop,
    trigger: Callable[[], None],
    signals: tuple[int, ...] = (signal.SIGTERM, signal.SIGINT),
) -> list[int]:
    """Wire ``signals`` to ``trigger`` (idempotent drain initiation).

    Returns the signals actually installed; platforms without
    ``add_signal_handler`` (or non-main threads) install none and fall back
    to KeyboardInterrupt handling.  Pair with :func:`remove_signal_drain`.
    """
    installed: list[int] = []
    for signum in signals:
        try:
            loop.add_signal_handler(signum, trigger)
        except (NotImplementedError, RuntimeError, ValueError):
            continue
        installed.append(signum)
    return installed


def remove_signal_drain(
    loop: asyncio.AbstractEventLoop, signals: list[int]
) -> None:
    """Undo :func:`install_signal_drain`."""
    for signum in signals:
        with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
            loop.remove_signal_handler(signum)
