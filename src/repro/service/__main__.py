"""CLI entry point: ``python -m repro.service``.

Three subcommands built around a deterministic demo workload (a seeded
random set, so a server and its clients can agree on data without sharing
files):

* ``serve`` -- start a :class:`~repro.service.server.SyncServer` hosting the
  demo set for the set protocols (``ibf``, ``cpi``) and a demo set-of-sets
  for the structured protocols, then run until interrupted;
* ``sync`` -- connect as a client whose copy of the demo set has a few
  seeded mutations, reconcile over a named protocol, and print the result;
* ``mutate`` -- push a delta into a server-side dataset (requires the
  server to run with ``--store``, so its live sketches absorb the delta);
* ``stats`` -- fetch the server's metrics report and render it as a
  human-readable table (``--json`` for the raw dict).

Example::

    python -m repro.service serve --port 8642 --store /tmp/sketches &
    python -m repro.service sync --port 8642 --protocol ibf --mutations 12
    python -m repro.service mutate --port 8642 --insert 17 23 --delete 4
    python -m repro.service stats --port 8642
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys

from repro.core.setsofsets.types import SetOfSets
from repro.errors import ParameterError, ReproError
from repro.hashing import derive_seed
from repro.protocols.options import ReconcileOptions
from repro.service.admission import AdmissionController, AdmissionPolicy
from repro.service.client import amutate, areconcile, areconcile_sharded, afetch_stats
from repro.service.fleet import SyncFleet, install_signal_drain, remove_signal_drain
from repro.service.metrics import format_stats_report
from repro.service.server import SyncServer
from repro.store import SketchStore

DEFAULT_SEED = 2018
DEFAULT_UNIVERSE = 1 << 20
DEFAULT_SIZE = 4096


def demo_set(universe: int, size: int, seed: int) -> set[int]:
    """The deterministic demo dataset both sides derive from the seed."""
    rng = random.Random(derive_seed(seed, "service-demo"))
    return set(rng.sample(range(universe), size))


def mutate_set(base: set[int], universe: int, mutations: int, seed: int) -> set[int]:
    """A client copy differing from ``base`` in exactly ``mutations`` elements
    (half seeded deletions, half seeded insertions)."""
    rng = random.Random(derive_seed(seed, "service-demo-client"))
    deletions = rng.sample(sorted(base), min(len(base), mutations // 2))
    mutated = base - set(deletions)
    insertions = mutations - len(deletions)
    if insertions > universe - len(base):
        raise ParameterError(
            f"cannot insert {insertions} fresh elements: only "
            f"{universe - len(base)} of the universe are unused"
        )
    while insertions:
        element = rng.randrange(universe)
        if element not in base and element not in mutated:
            mutated.add(element)
            insertions -= 1
    return mutated


def demo_set_of_sets(universe: int, size: int, seed: int) -> SetOfSets:
    """A demo set-of-sets: the demo set chopped into 8-element children."""
    ordered = sorted(demo_set(universe, size, seed))
    return SetOfSets(ordered[i : i + 8] for i in range(0, len(ordered), 8))


def mutate_set_of_sets(
    base: SetOfSets, universe: int, mutations: int, seed: int
) -> SetOfSets:
    """A client copy with one seeded element change in ``mutations`` children."""
    rng = random.Random(derive_seed(seed, "service-demo-client"))
    children = [set(child) for child in sorted(base.children, key=sorted)]
    for index in rng.sample(range(len(children)), min(len(children), mutations)):
        children[index].add(rng.randrange(universe))
    return SetOfSets(children)


def _common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="demo-data seed shared by server and clients")
    parser.add_argument("--universe", type=int, default=DEFAULT_UNIVERSE)
    parser.add_argument("--size", type=int, default=DEFAULT_SIZE,
                        help="demo dataset size")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service", description=__doc__.splitlines()[0]
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser("serve", help="run the demo sync server")
    _common_arguments(serve)
    serve.add_argument("--store", default=None, metavar="DIR",
                       help="keep live sketches in a durable SketchStore "
                            "rooted at DIR (enables mutate; syncs are "
                            "answered from the store)")
    serve.add_argument("--anti-entropy", type=float, default=None,
                       metavar="SECONDS",
                       help="snapshot dirty datasets every SECONDS in the "
                            "background (requires --store)")
    serve.add_argument("--workers", type=int, default=1, metavar="W",
                       help="run a W-worker fleet behind a supervisor "
                            "(default 1: a single in-process server)")
    serve.add_argument("--drain-deadline", type=float, default=5.0,
                       metavar="SECONDS",
                       help="how long SIGTERM/SIGINT-triggered drains wait "
                            "for in-flight sessions (default 5)")
    serve.add_argument("--max-inflight", type=int, default=None, metavar="N",
                       help="admission control: cap concurrently running "
                            "sessions at N; excess hellos are shed with a "
                            "coded refusal instead of queueing")
    serve.add_argument("--client-rate", type=float, default=None, metavar="R",
                       help="admission control: per-client token-bucket "
                            "rate of R sessions/second")
    serve.add_argument("--client-burst", type=float, default=8.0, metavar="B",
                       help="token-bucket burst size (default 8)")

    sync = commands.add_parser("sync", help="reconcile a mutated demo copy")
    _common_arguments(sync)
    sync.add_argument("--protocol", default="ibf",
                      help="registered protocol name (default: ibf)")
    sync.add_argument("--mutations", type=int, default=16,
                      help="seeded mutations applied to the client copy")
    sync.add_argument("--difference-bound", type=int, default=None,
                      help="known difference bound d (omit for unknown-d)")
    sync.add_argument("--shard-bits", type=int, default=0,
                      help="run a sharded sync over 2^bits concurrent sessions")

    mutate = commands.add_parser(
        "mutate", help="apply a delta to a server-side dataset"
    )
    mutate.add_argument("--host", default="127.0.0.1")
    mutate.add_argument("--port", type=int, default=8642)
    mutate.add_argument("--dataset", default="ibf",
                        help="dataset (protocol name) to mutate (default: ibf)")
    mutate.add_argument("--insert", type=int, nargs="*", default=[],
                        metavar="KEY", help="keys to insert")
    mutate.add_argument("--delete", type=int, nargs="*", default=[],
                        metavar="KEY", help="keys to delete")

    stats = commands.add_parser("stats", help="print the server metrics report")
    stats.add_argument("--host", default="127.0.0.1")
    stats.add_argument("--port", type=int, default=8642)
    stats.add_argument("--json", action="store_true",
                       help="print the raw JSON report instead of the table")
    return parser


def _demo_datasets(args: argparse.Namespace) -> dict[str, object]:
    demo = demo_set(args.universe, args.size, args.seed)
    demo_sos = demo_set_of_sets(args.universe, args.size, args.seed)
    return {
        "ibf": demo,
        "cpi": demo,
        "iblt_of_iblts": demo_sos,
        "multiround": demo_sos,
        "cascading": demo_sos,
        "naive": demo_sos,
    }


def _admission_from(args: argparse.Namespace) -> AdmissionController | None:
    policy = AdmissionPolicy(
        max_inflight=args.max_inflight,
        client_rate=args.client_rate,
        client_burst=args.client_burst,
    )
    return AdmissionController(policy) if policy.enabled else None


async def _run_until_drained(
    server: "SyncServer | SyncFleet", args: argparse.Namespace
) -> None:
    """Serve until SIGTERM/SIGINT (or cancellation), then drain gracefully.

    Shared by the single-server and fleet paths: both expose the same
    ``serve_forever`` / ``adrain`` surface.
    """
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    installed = install_signal_drain(loop, stop.set)
    serve_task = asyncio.ensure_future(server.serve_forever())
    try:
        stop_wait = asyncio.ensure_future(stop.wait())
        try:
            await asyncio.wait(
                {serve_task, stop_wait}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            stop_wait.cancel()
        print("draining...", flush=True)
        summary = await server.adrain(args.drain_deadline)
        print(
            f"drained: {summary['drained']} finished, "
            f"{summary['aborted']} aborted",
            flush=True,
        )
    finally:
        serve_task.cancel()
        try:
            await serve_task
        except (asyncio.CancelledError, ReproError):
            pass
        remove_signal_drain(loop, installed)


async def _serve(args: argparse.Namespace) -> None:
    datasets = _demo_datasets(args)
    admission = _admission_from(args)
    extra = f" (store: {args.store})" if args.store else ""
    if args.workers > 1:
        async with SyncFleet(
            datasets,
            workers=args.workers,
            host=args.host,
            port=args.port,
            store_root=args.store,
            admission=admission,
            seed=args.seed,
            drain_deadline=args.drain_deadline,
            anti_entropy_interval=args.anti_entropy,
        ) as fleet:
            print(
                f"serving {sorted(datasets)} on {args.host}:{fleet.port} "
                f"with {args.workers} workers{extra}",
                flush=True,
            )
            await _run_until_drained(fleet, args)
        return
    store = SketchStore(args.store) if args.store else None
    async with SyncServer(
        datasets,
        host=args.host,
        port=args.port,
        store=store,
        anti_entropy_interval=args.anti_entropy,
        drain_deadline=args.drain_deadline,
        admission=admission,
    ) as server:
        print(
            f"serving {sorted(datasets)} on {args.host}:{server.port}{extra}",
            flush=True,
        )
        await _run_until_drained(server, args)


async def _sync(args: argparse.Namespace) -> int:
    from repro.protocols import registry

    if registry.get(args.protocol).input_kind == "set_of_sets":
        base = demo_set_of_sets(args.universe, args.size, args.seed)
        mine = mutate_set_of_sets(base, args.universe, args.mutations, args.seed)
    else:
        base = demo_set(args.universe, args.size, args.seed)
        mine = mutate_set(base, args.universe, args.mutations, args.seed)
    options = ReconcileOptions(
        seed=args.seed,
        universe_size=args.universe,
        difference_bound=args.difference_bound,
    )
    if args.shard_bits:
        result = await areconcile_sharded(
            args.host, args.port, args.protocol, mine,
            shard_bits=args.shard_bits, options=options,
        )
    else:
        result = await areconcile(
            args.host, args.port, args.protocol, mine, options=options
        )
    status = "reconciled" if result.success else "FAILED"
    print(
        f"{status}: {args.protocol} in {result.total_bits} bits over "
        f"{result.num_rounds} round(s), {result.attempts} attempt(s)"
    )
    if result.success and result.recovered is not None:
        matches = result.recovered == base
        print(f"recovered the server dataset: {'yes' if matches else 'NO'}")
        return 0 if matches else 1
    return 0 if result.success else 1


async def _mutate(args: argparse.Namespace) -> int:
    ack = await amutate(
        args.host, args.port, args.dataset,
        insert=args.insert, delete=args.delete,
    )
    print(
        f"mutated {args.dataset}: +{ack['inserted']} / -{ack['deleted']} keys "
        f"(size now {ack['size']})"
    )
    return 0


async def _stats(args: argparse.Namespace) -> None:
    report = await afetch_stats(args.host, args.port)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(format_stats_report(report), end="")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "serve":
            asyncio.run(_serve(args))
            return 0
        if args.command == "sync":
            return asyncio.run(_sync(args))
        if args.command == "mutate":
            return asyncio.run(_mutate(args))
        asyncio.run(_stats(args))
        return 0
    except KeyboardInterrupt:
        return 130
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
