"""Session negotiation: the hello/ack handshake the sync service speaks.

Before a protocol session starts, the client sends one ``FRAME_CONTROL``
frame labeled ``"hello"`` whose JSON payload names the registered protocol,
the role the client wants to play, the wire-serializable subset of
:class:`~repro.protocols.options.ReconcileOptions`, and -- for the
set-of-sets protocols -- the client input's *public size statistics*
(``num_children``, ``total_elements``, ``max_child_size``).  Those
statistics are exactly the quantities the paper's protocol statements assume
both parties know; exchanging them in the hello lets both endpoints build
identical shared contexts even though each only holds its own data.

The server replies with a ``"hello-ack"`` control frame: either
``{"ok": true, "options": ..., "stats": ...}`` echoing the canonicalized
options plus the *server* input's public statistics, or ``{"ok": false,
"error": ...}``, which the client surfaces as a
:class:`~repro.errors.ServiceError`.

A hello may also carry a ``shard`` descriptor (``{"bits", "index", "seed"}``)
asking the server to restrict its dataset to one splitmix64 key-prefix shard
(see :mod:`repro.service.sharding`), or ``{"stats": true}`` to request the
service metrics report instead of a session.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any

from repro.errors import ServiceError, SessionRejectedError
from repro.protocols.options import ReconcileOptions
from repro.service.admission import ADMISSION_CODES

#: Control-frame labels of the handshake.
HELLO_LABEL = "hello"
ACK_LABEL = "hello-ack"
STATS_LABEL = "stats"
#: Control-frame labels of the mutation path (sketch-store servers).
MUTATE_LABEL = "mutate"
MUTATE_ACK_LABEL = "mutate-ack"

#: Handshake version; bumped on incompatible changes to the JSON shapes.
SERVICE_VERSION = 1

#: Input kinds the service can host.  The party builders for these kinds
#: only consume the peer's *public statistics* (exchanged in the hello), so
#: a placeholder peer input is safe; graph/forest/table/document protocols
#: derive shared context from both inputs in ways a hello cannot carry yet.
#: ``"kv"`` rides the same rule: the kv party bodies are lazy generators
#: that only ever touch the local role's replica, so the remote side's
#: stand-in is never dereferenced at all.
SERVED_INPUT_KINDS = ("set", "set_of_sets", "kv")

_OPTION_FIELDS = {f.name for f in dataclasses.fields(ReconcileOptions)}
_UNSERIALIZABLE_OPTIONS = ("estimator_factory",)


def options_to_wire(options: ReconcileOptions) -> dict[str, Any]:
    """The JSON-safe dict form of ``options`` (defaults omitted).

    Raises :class:`ServiceError` for options that cannot travel (a custom
    ``estimator_factory`` is a Python callable; sessions that need one are
    restricted to in-process transports).
    """
    for name in _UNSERIALIZABLE_OPTIONS:
        if getattr(options, name) is not None:
            raise ServiceError(
                f"option {name!r} is not wire-serializable; "
                "the service only supports the default"
            )
    defaults = ReconcileOptions()
    wire = {}
    for field in dataclasses.fields(options):
        if field.name in _UNSERIALIZABLE_OPTIONS:
            continue
        value = getattr(options, field.name)
        if value != getattr(defaults, field.name):
            wire[field.name] = value
    return wire


def options_from_wire(wire: dict[str, Any]) -> ReconcileOptions:
    """Rebuild a :class:`ReconcileOptions` from its wire dict."""
    unknown = set(wire) - (_OPTION_FIELDS - set(_UNSERIALIZABLE_OPTIONS))
    if unknown:
        raise ServiceError(f"unknown option(s) in hello: {sorted(unknown)}")
    return ReconcileOptions().merged(**wire)


@dataclass(frozen=True)
class PeerStats:
    """Public size statistics of one set-of-sets input.

    Stands in for the peer's input when building parties: the set-of-sets
    context builders only read these three attributes off the inputs
    (``context_for`` and ``_derived_max_child_size``), so a
    :class:`PeerStats` carrying the peer's real statistics yields the exact
    shared context an in-memory session over both real inputs would build.
    """

    num_children: int = 0
    total_elements: int = 0
    max_child_size: int = 0

    def to_wire(self) -> dict[str, int]:
        return dataclasses.asdict(self)

    @classmethod
    def from_wire(cls, wire: dict[str, Any] | None) -> "PeerStats":
        if not wire:
            return cls()
        try:
            return cls(
                int(wire["num_children"]),
                int(wire["total_elements"]),
                int(wire["max_child_size"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed stats in hello: {wire!r}") from exc

    @classmethod
    def of(cls, data: Any) -> "PeerStats":
        """The statistics of a real input (zeros for plain sets)."""
        if hasattr(data, "num_children"):
            return cls(data.num_children, data.total_elements, data.max_child_size)
        return cls()


@dataclass(frozen=True)
class ShardRequest:
    """Ask the server to restrict its dataset to one key-prefix shard."""

    bits: int
    index: int
    seed: int

    def to_wire(self) -> dict[str, int]:
        return dataclasses.asdict(self)

    @classmethod
    def from_wire(cls, wire: dict[str, Any] | None) -> "ShardRequest | None":
        if wire is None:
            return None
        try:
            return cls(int(wire["bits"]), int(wire["index"]), int(wire["seed"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed shard descriptor: {wire!r}") from exc


@dataclass(frozen=True)
class Hello:
    """The client's opening control payload."""

    protocol: str | None
    role: str = "bob"
    options: dict[str, Any] = dataclasses.field(default_factory=dict)
    stats: dict[str, int] | None = None
    shard: ShardRequest | None = None
    want_stats: bool = False

    def to_json(self) -> bytes:
        body: dict[str, Any] = {"version": SERVICE_VERSION}
        if self.want_stats:
            body["stats_request"] = True
        else:
            body.update(
                protocol=self.protocol,
                role=self.role,
                options=self.options,
                stats=self.stats,
            )
            if self.shard is not None:
                body["shard"] = self.shard.to_wire()
        return json.dumps(body).encode()

    @classmethod
    def from_json(cls, payload: bytes) -> "Hello":
        try:
            body = json.loads(payload.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"malformed hello payload: {exc}") from exc
        if body.get("version") != SERVICE_VERSION:
            raise ServiceError(
                f"unsupported service version {body.get('version')!r} "
                f"(this side speaks {SERVICE_VERSION})"
            )
        if body.get("stats_request"):
            return cls(None, want_stats=True)
        role = body.get("role", "bob")
        if role not in ("alice", "bob"):
            raise ServiceError(f"hello role must be 'alice' or 'bob', got {role!r}")
        return cls(
            body.get("protocol"),
            role,
            body.get("options") or {},
            body.get("stats"),
            ShardRequest.from_wire(body.get("shard")),
        )


def placeholder_input(input_kind: str, stats: PeerStats) -> Any:
    """The stand-in for the peer's input when building a party locally.

    Set protocols derive shared context from options alone, so an empty set
    suffices; set-of-sets protocols read the public statistics exchanged in
    the handshake off the placeholder.
    """
    if input_kind == "set":
        return frozenset()
    if input_kind == "set_of_sets":
        return stats
    if input_kind == "kv":
        # Party generators are lazy and only the locally-driven role runs,
        # so the peer-side stand-in is never dereferenced.
        return None
    raise ServiceError(
        f"input kind {input_kind!r} is not served; "
        f"supported kinds: {', '.join(SERVED_INPUT_KINDS)}"
    )


def ack_payload(
    options: ReconcileOptions, stats: PeerStats
) -> bytes:
    """A successful ``hello-ack`` payload."""
    return json.dumps(
        {
            "ok": True,
            "version": SERVICE_VERSION,
            "options": options_to_wire(options),
            "stats": stats.to_wire(),
        }
    ).encode()


def error_payload(message: str, code: str | None = None) -> bytes:
    """A refusing ``hello-ack`` payload.

    ``code`` is the optional machine-readable rejection reason (the
    admission codes of :mod:`repro.service.admission`); clients map coded
    refusals onto :class:`~repro.errors.SessionRejectedError` and uncoded
    ones onto plain :class:`~repro.errors.ServiceError`.
    """
    body: dict[str, Any] = {"ok": False, "version": SERVICE_VERSION, "error": message}
    if code is not None:
        body["code"] = code
    return json.dumps(body).encode()


def mutate_payload(
    dataset: str, insert: "list[int] | tuple[int, ...]", delete: "list[int] | tuple[int, ...]"
) -> bytes:
    """The client's ``mutate`` control payload (apply a delta server-side)."""
    return json.dumps(
        {
            "version": SERVICE_VERSION,
            "dataset": dataset,
            "insert": sorted(int(key) for key in insert),
            "delete": sorted(int(key) for key in delete),
        }
    ).encode()


def parse_mutate(payload: bytes) -> tuple[str, list[int], list[int]]:
    """Parse and validate a ``mutate`` payload into ``(dataset, ins, dels)``."""
    try:
        body = json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceError(f"malformed mutate payload: {exc}") from exc
    if body.get("version") != SERVICE_VERSION:
        raise ServiceError(
            f"unsupported service version {body.get('version')!r} "
            f"(this side speaks {SERVICE_VERSION})"
        )
    dataset = body.get("dataset")
    if not isinstance(dataset, str) or not dataset:
        raise ServiceError("mutate names no dataset")

    def keys(name: str) -> list[int]:
        raw = body.get(name, [])
        if not isinstance(raw, list):
            raise ServiceError(f"mutate {name!r} must be a list of keys")
        parsed = []
        for key in raw:
            if isinstance(key, bool) or not isinstance(key, int) or key < 0:
                raise ServiceError(
                    f"mutate {name!r} keys must be non-negative integers, got {key!r}"
                )
            parsed.append(key)
        return parsed

    insert, delete = keys("insert"), keys("delete")
    overlap = set(insert) & set(delete)
    if overlap:
        raise ServiceError(
            f"mutate inserts and deletes overlap on {len(overlap)} key(s)"
        )
    return dataset, insert, delete


def mutate_ack_payload(inserted: int, deleted: int, size: int) -> bytes:
    """A successful ``mutate-ack``: the *effective* delta plus the new size."""
    return json.dumps(
        {
            "ok": True,
            "version": SERVICE_VERSION,
            "inserted": inserted,
            "deleted": deleted,
            "size": size,
        }
    ).encode()


def parse_mutate_ack(payload: bytes) -> dict[str, int]:
    """Parse a ``mutate-ack``; raises :class:`ServiceError` on refusal."""
    try:
        body = json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceError(f"malformed mutate-ack payload: {exc}") from exc
    if not body.get("ok"):
        raise ServiceError(
            f"server refused the mutation: {body.get('error', 'unknown error')}"
        )
    return {
        "inserted": int(body.get("inserted", 0)),
        "deleted": int(body.get("deleted", 0)),
        "size": int(body.get("size", 0)),
    }


def parse_ack(payload: bytes) -> tuple[ReconcileOptions, PeerStats]:
    """Parse a ``hello-ack``; raises on refusal.

    A refusal carrying an admission code raises the typed (retryable)
    :class:`~repro.errors.SessionRejectedError`; any other refusal raises
    a plain :class:`ServiceError`.
    """
    try:
        body = json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceError(f"malformed hello-ack payload: {exc}") from exc
    if not body.get("ok"):
        message = body.get("error", "unknown error")
        code = body.get("code")
        if code in ADMISSION_CODES:
            raise SessionRejectedError(
                f"server shed the session ({code}): {message}", code
            )
        raise ServiceError(f"server refused the session: {message}")
    return (
        options_from_wire(body.get("options") or {}),
        PeerStats.from_wire(body.get("stats")),
    )
