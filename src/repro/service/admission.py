"""Admission control: decide *before* a session starts whether to run it.

Server-side CPU is a budgeted resource (cf. the seed-search cost accounting
of Lehmann--Sanders--Walzer in PAPERS.md): a sync service that accepts every
hello queues unboundedly under overload and serves everyone slowly.  The
admission layer sheds load instead, with two independent gates checked at
hello time:

* a **per-client token bucket** -- each client (keyed by peer address)
  accrues session tokens at ``client_rate`` per second up to ``client_burst``;
  a hello with no token is shed with :data:`REJECT_RATE_LIMITED`;
* a **global in-flight cap** -- at most ``max_inflight`` sessions run at
  once across the server (or fleet supervisor); beyond it hellos are shed
  with :data:`REJECT_AT_CAPACITY`.

A shed session is refused with a *clean, coded* hello-ack error frame (see
:func:`repro.service.hello.error_payload`), which clients surface as the
typed :class:`~repro.errors.SessionRejectedError` -- retryable by
construction, unlike a negotiation refusal.  Note the gate order: the rate
check runs first, so a client hammering a saturated server drains its own
bucket -- per-client fairness is enforced even when the global cap is the
binding constraint.

Everything here is synchronous and lock-protected: the single-server path
calls it from one event loop, the fleet supervisor from another process,
and the token-bucket clock is injectable for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.errors import ParameterError

#: Machine-readable rejection codes carried in the coded hello-ack error
#: frame; clients map them onto :class:`~repro.errors.SessionRejectedError`.
REJECT_RATE_LIMITED = "rate-limited"
REJECT_AT_CAPACITY = "at-capacity"

#: Every code the admission layer can emit (the client treats exactly these
#: as retryable sheds; any other refusal stays a plain ServiceError).
ADMISSION_CODES = (REJECT_RATE_LIMITED, REJECT_AT_CAPACITY)

#: Human-readable refusal messages per code (sent in the error frame).
_CODE_MESSAGES = {
    REJECT_RATE_LIMITED: "client session rate limit exceeded; retry later",
    REJECT_AT_CAPACITY: "server is at its in-flight session cap; retry later",
}


def rejection_message(code: str) -> str:
    """The human-readable refusal message for an admission code."""
    return _CODE_MESSAGES.get(code, "session rejected by admission control")


@dataclass(frozen=True)
class AdmissionPolicy:
    """The knobs of the admission layer (validated, immutable, picklable).

    ``None`` disables a gate: the default policy admits everything, so
    admission is strictly opt-in.  ``max_tracked_clients`` bounds the
    token-bucket table (least-recently-seen buckets are evicted; an evicted
    client re-enters with a full bucket, which errs toward admitting).
    """

    max_inflight: int | None = None
    client_rate: float | None = None
    client_burst: float = 8.0
    max_tracked_clients: int = 1024

    def __post_init__(self) -> None:
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ParameterError("max_inflight must be >= 1 (or None to disable)")
        if self.client_rate is not None and self.client_rate <= 0:
            raise ParameterError("client_rate must be > 0 (or None to disable)")
        if self.client_burst < 1:
            raise ParameterError("client_burst must be >= 1")
        if self.max_tracked_clients < 1:
            raise ParameterError("max_tracked_clients must be >= 1")

    @property
    def enabled(self) -> bool:
        return self.max_inflight is not None or self.client_rate is not None


class TokenBucket:
    """One client's session budget: ``rate`` tokens/s, capped at ``burst``."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.stamp = now

    def try_take(self, now: float) -> bool:
        """Refill from elapsed time, then spend one token if available."""
        elapsed = max(0.0, now - self.stamp)
        self.stamp = now
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class AdmissionController:
    """Thread-safe gatekeeper applying one :class:`AdmissionPolicy`.

    ``try_admit`` either admits (returns ``None`` and counts the session
    in-flight -- the caller *must* pair it with ``release()``) or sheds
    (returns the rejection code and counts nothing).
    """

    def __init__(
        self,
        policy: AdmissionPolicy | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy if policy is not None else AdmissionPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._inflight = 0
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def try_admit(self, client: str) -> str | None:
        """Admit the session (``None``) or shed it (a rejection code)."""
        policy = self.policy
        with self._lock:
            if policy.client_rate is not None:
                if not self._bucket_for(client).try_take(self._clock()):
                    return REJECT_RATE_LIMITED
            if (
                policy.max_inflight is not None
                and self._inflight >= policy.max_inflight
            ):
                return REJECT_AT_CAPACITY
            self._inflight += 1
            return None

    def release(self, count: int = 1) -> None:
        """Return ``count`` admitted sessions to the in-flight budget."""
        with self._lock:
            self._inflight = max(0, self._inflight - count)

    def _bucket_for(self, client: str) -> TokenBucket:
        bucket = self._buckets.get(client)
        if bucket is not None:
            self._buckets.move_to_end(client)
            return bucket
        policy = self.policy
        assert policy.client_rate is not None  # caller gated on the policy
        bucket = TokenBucket(policy.client_rate, policy.client_burst, self._clock())
        self._buckets[client] = bucket
        while len(self._buckets) > policy.max_tracked_clients:
            self._buckets.popitem(last=False)
        return bucket
