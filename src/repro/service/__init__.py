"""The concurrent reconciliation service.

Three pillars on top of the protocol-session layer
(:mod:`repro.protocols`):

* **Async sync server + client** -- :class:`SyncServer` multiplexes many
  simultaneous protocol sessions on one event loop, speaking the same frame
  format as the blocking :class:`~repro.protocols.transports.SocketTransport`
  through :class:`AsyncSocketTransport`; :func:`areconcile` /
  :func:`areconcile_sharded` / :func:`afetch_stats` are the client side, and
  ``python -m repro.service`` is the CLI entry point.
* **Sharded reconciliation** -- :func:`reconcile_sharded` splits one huge
  instance into splitmix64 key-prefix shards, runs the per-shard sessions
  (serially, on a process pool, or concurrently against a server), resplits
  failed shards instead of failing the whole sync, and merges everything
  into one result with exact aggregate bit accounting.
* **Service metrics** -- :class:`ServiceMetrics` aggregates per-session
  records (rounds, wire bytes vs. charged bits, retries, shard fan-out)
  into the report served to ``stats`` requests.

See docs/service.md for the architecture and failure model.
"""

from repro.service.admission import (
    AdmissionController,
    AdmissionPolicy,
    REJECT_AT_CAPACITY,
    REJECT_RATE_LIMITED,
)
from repro.service.client import (
    afetch_stats,
    amutate,
    areconcile,
    areconcile_sharded,
    fetch_stats_blocking,
    mutate_server,
    reconcile_with_server,
)
from repro.service.dispatch import LeastLoadedDispatcher, owner_of
from repro.service.fleet import (
    SyncFleet,
    WorkerConfig,
    fleet_supported,
    install_signal_drain,
    remove_signal_drain,
)
from repro.service.hello import Hello, PeerStats, ShardRequest
from repro.service.metrics import (
    ServiceMetrics,
    SessionRecord,
    format_stats_report,
)
from repro.service.server import SyncServer
from repro.service.sharding import (
    ShardPlan,
    merge_sessions,
    reconcile_sharded,
    shard_input,
    shard_of,
    split_shard,
)
from repro.service.transport import AsyncSocketTransport, run_party_async

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "AsyncSocketTransport",
    "Hello",
    "LeastLoadedDispatcher",
    "PeerStats",
    "REJECT_AT_CAPACITY",
    "REJECT_RATE_LIMITED",
    "ServiceMetrics",
    "SessionRecord",
    "ShardPlan",
    "ShardRequest",
    "SyncFleet",
    "SyncServer",
    "WorkerConfig",
    "afetch_stats",
    "amutate",
    "areconcile",
    "areconcile_sharded",
    "fetch_stats_blocking",
    "fleet_supported",
    "format_stats_report",
    "install_signal_drain",
    "merge_sessions",
    "mutate_server",
    "owner_of",
    "remove_signal_drain",
    "reconcile_with_server",
    "reconcile_sharded",
    "run_party_async",
    "shard_input",
    "shard_of",
    "split_shard",
]
