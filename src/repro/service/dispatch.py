"""Connection dispatch: which worker serves an incoming session.

Two routing regimes, matching the two fleet deployment shapes:

* **Ownership routing** (store-backed fleets) -- datasets are partitioned
  across workers by splitmix64 prefix, reusing the
  :mod:`repro.service.sharding` conventions: :func:`owner_of` mixes the
  dataset name's fingerprint with the shared partition salt and takes the
  top of the 64-bit value, so ``mutate`` frames and ``ibf`` sessions for a
  dataset always land on the worker that holds its live sketches and
  journal partition.  Ownership is a pure function of
  ``(name, num_workers, seed)``: the supervisor, a restarted worker, and
  any test can recompute it without coordination.

* **Least-loaded-of-d dispatch** (replicated fleets, no store) -- every
  worker holds every dataset, so any worker can serve any session.  Blind
  round-robin ignores that session durations vary wildly (a multiround
  set-of-sets sync vs. a one-round IBF sync); the balls-and-bins analysis
  behind the two-choice paradigm (Alon--Gurel-Gurevich--Lubetzky in
  PAPERS.md: even *some* memory of where load went beats none) says
  sampling ``d`` workers and picking the less loaded collapses the max
  load gap.  :class:`LeastLoadedDispatcher` samples ``d`` workers with a
  deterministic splitmix64 sequence (reproducible under test), picks the
  least in-flight one, and enforces an optional per-worker in-flight
  budget -- when every sampled worker is at budget it falls back to the
  global minimum, and when *all* workers are at budget it returns ``None``
  so the supervisor sheds the connection instead of queueing unboundedly.
"""

from __future__ import annotations

from typing import Sequence

from repro.hashing import derive_seed
from repro.hashing.mix import MASK64, mix64

#: Label mixed into the fleet seed to derive the ownership salt (distinct
#: from the shard-partition label: shard indices and worker ownership are
#: independent partitions of different key spaces).
_OWNER_LABEL = "service-fleet-owner"


def owner_fingerprint(name: str, seed: int) -> int:
    """The salted 64-bit fingerprint of a dataset name (BLAKE2b-derived,
    like every other seed expansion in the library, then splitmix64-mixed)."""
    return mix64(derive_seed(seed, _OWNER_LABEL, name) & MASK64)


def owner_of(name: str, num_workers: int, seed: int) -> int:
    """The worker that owns dataset ``name`` in a ``num_workers`` fleet.

    Multiplies the mixed 64-bit fingerprint down to the worker range (the
    splitmix64-prefix convention of :func:`repro.service.sharding.shard_of`
    generalized to non-power-of-two worker counts: the top bits of the
    mixed value decide, so growing the fleet only moves prefix ranges).
    """
    if num_workers <= 1:
        return 0
    return (owner_fingerprint(name, seed) * num_workers) >> 64


class LeastLoadedDispatcher:
    """Pick a worker for one connection by sampled in-flight load.

    The supervisor owns the authoritative per-worker in-flight counts (it
    sees every dispatch and every completion report), so this is plain
    synchronous bookkeeping -- no cross-process reads on the hot path.
    """

    def __init__(
        self,
        num_workers: int,
        *,
        choices: int = 2,
        per_worker_budget: int | None = None,
        seed: int = 0,
    ) -> None:
        self.num_workers = num_workers
        self.choices = max(1, min(choices, num_workers))
        self.per_worker_budget = per_worker_budget
        self._loads = [0] * num_workers
        self._state = derive_seed(seed, "service-fleet-dispatch") & MASK64

    @property
    def loads(self) -> Sequence[int]:
        return tuple(self._loads)

    def _next_random(self) -> int:
        # splitmix64 stream: deterministic for a given fleet seed, so tests
        # can replay dispatch decisions.
        self._state = (self._state + 0x9E3779B97F4A7C15) & MASK64
        return mix64(self._state)

    def pick(self, eligible: Sequence[int] | None = None) -> int | None:
        """The worker for the next connection, or ``None`` when all are at
        budget (the caller sheds the connection).

        ``eligible`` restricts the choice (e.g. to workers that are alive
        and ready); defaults to every worker.
        """
        pool = list(range(self.num_workers)) if eligible is None else list(eligible)
        if not pool:
            return None
        sampled = []
        for _ in range(min(self.choices, len(pool))):
            index = self._next_random() % len(pool)
            sampled.append(pool[index])
        best = min(sampled, key=lambda w: self._loads[w])
        budget = self.per_worker_budget
        if budget is not None and self._loads[best] >= budget:
            # The sample missed every under-budget worker; fall back to the
            # global least-loaded before giving up.
            best = min(pool, key=lambda w: self._loads[w])
            if self._loads[best] >= budget:
                return None
        return best

    def assign(self, worker: int) -> None:
        self._loads[worker] += 1

    def complete(self, worker: int) -> None:
        self._loads[worker] = max(0, self._loads[worker] - 1)

    def reset(self, worker: int) -> None:
        """Forget a worker's load (it crashed; its sessions died with it)."""
        self._loads[worker] = 0
