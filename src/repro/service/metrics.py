"""Service metrics: per-session records and aggregate counters.

Every session the server (or the sharded engine) finishes is recorded as a
:class:`SessionRecord`; :class:`ServiceMetrics` aggregates them into the
counters the ``/stats`` report exposes -- sessions served/failed, rounds,
raw bytes on the wire (frame headers included) vs. the bits the transcripts
charged, protocol attempts beyond the first (``retries``, the repeated
doubling variants), and shard fan-out (sessions run on behalf of sharded
reconciliations, including recovery resplits).

The report comes in two shapes: :meth:`ServiceMetrics.report` returns the
JSON-safe dict served to ``stats`` control requests, and
:meth:`ServiceMetrics.format_report` renders it through the benchmark
harness's :func:`~repro.bench.reporting.format_table` for humans.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass, field
from typing import Any, Mapping


@dataclass(frozen=True)
class SessionRecord:
    """What one finished session contributed to the aggregate counters."""

    protocol: str
    role: str
    success: bool
    rounds: int = 0
    messages: int = 0
    bits_charged: int = 0
    wire_bytes_sent: int = 0
    wire_bytes_received: int = 0
    attempts: int = 1
    sharded: bool = False
    error: str | None = None


@dataclass
class ServiceMetrics:
    """Aggregate service counters; safe to share across threads and tasks.

    The asyncio server mutates this from one event loop, but the sharded
    engine's process-pool path reports from worker futures, so updates take
    a lock (uncontended in the common case).
    """

    sessions_started: int = 0
    sessions_served: int = 0
    sessions_failed: int = 0
    rounds_total: int = 0
    messages_total: int = 0
    bits_charged_total: int = 0
    wire_bytes_sent: int = 0
    wire_bytes_received: int = 0
    retries: int = 0
    shard_sessions: int = 0
    shard_resplits: int = 0
    stats_requests: int = 0
    rejected_hellos: int = 0
    sessions_drained: int = 0
    sessions_aborted: int = 0
    mutations_applied: int = 0
    mutations_rejected: int = 0
    keys_inserted: int = 0
    keys_deleted: int = 0
    store_hits: int = 0
    store_misses: int = 0
    store_invalidations: int = 0
    journal_replays: int = 0
    journal_entries_replayed: int = 0
    snapshots_written: int = 0
    snapshot_failures: int = 0
    anti_entropy_cycles: int = 0
    store_dirty_datasets: int = 0
    store_journal_lag: int = 0
    sessions_shed_rate: int = 0
    sessions_shed_capacity: int = 0
    connections_dispatched: int = 0
    worker_restarts: int = 0
    by_protocol: dict[str, dict[str, int]] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    # -- recording ------------------------------------------------------------------

    def record_start(self) -> None:
        with self._lock:
            self.sessions_started += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected_hellos += 1

    def record_stats_request(self) -> None:
        with self._lock:
            self.stats_requests += 1

    def record_shed(self, code: str) -> None:
        """Count one admission-control rejection by its code."""
        with self._lock:
            if code == "rate-limited":
                self.sessions_shed_rate += 1
            else:
                self.sessions_shed_capacity += 1

    def record_dispatch(self) -> None:
        """Count one connection handed from the supervisor to a worker."""
        with self._lock:
            self.connections_dispatched += 1

    def record_worker_restart(self) -> None:
        with self._lock:
            self.worker_restarts += 1

    def record_resplit(self, count: int = 1) -> None:
        with self._lock:
            self.shard_resplits += count

    def record_drain(self, drained: int, aborted: int) -> None:
        with self._lock:
            self.sessions_drained += drained
            self.sessions_aborted += aborted

    def record_mutation(self, inserted: int, deleted: int) -> None:
        with self._lock:
            self.mutations_applied += 1
            self.keys_inserted += inserted
            self.keys_deleted += deleted

    def record_mutation_rejected(self) -> None:
        with self._lock:
            self.mutations_rejected += 1

    def record_store_hit(self) -> None:
        with self._lock:
            self.store_hits += 1

    def record_store_miss(self) -> None:
        with self._lock:
            self.store_misses += 1

    def record_store_invalidation(self) -> None:
        with self._lock:
            self.store_invalidations += 1

    def record_journal_replay(self, entries: int) -> None:
        with self._lock:
            self.journal_replays += 1
            self.journal_entries_replayed += entries

    def record_snapshot(self) -> None:
        with self._lock:
            self.snapshots_written += 1

    def record_snapshot_failure(self) -> None:
        with self._lock:
            self.snapshot_failures += 1

    def record_anti_entropy_cycle(self) -> None:
        with self._lock:
            self.anti_entropy_cycles += 1

    def record_store_staleness(self, dirty_datasets: int, journal_lag: int) -> None:
        """Gauges (latest sweep's values, not running totals)."""
        with self._lock:
            self.store_dirty_datasets = dirty_datasets
            self.store_journal_lag = journal_lag

    def record_session(self, record: SessionRecord) -> None:
        with self._lock:
            if record.success:
                self.sessions_served += 1
            else:
                self.sessions_failed += 1
            self.rounds_total += record.rounds
            self.messages_total += record.messages
            self.bits_charged_total += record.bits_charged
            self.wire_bytes_sent += record.wire_bytes_sent
            self.wire_bytes_received += record.wire_bytes_received
            self.retries += max(0, record.attempts - 1)
            if record.sharded:
                self.shard_sessions += 1
            per = self.by_protocol.setdefault(
                record.protocol,
                {"served": 0, "failed": 0, "bits_charged": 0, "wire_bytes": 0},
            )
            per["served" if record.success else "failed"] += 1
            per["bits_charged"] += record.bits_charged
            per["wire_bytes"] += (
                record.wire_bytes_sent + record.wire_bytes_received
            )

    # -- aggregation across workers -------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A consistent, picklable copy of every counter.

        Taken under the lock, so a snapshot never shows a half-recorded
        session.  ``merge``-ing per-worker snapshots into a fresh
        :class:`ServiceMetrics` yields exactly the totals a single shared
        instance would have accumulated (counters are sums; the staleness
        gauges sum too, giving the fleet-wide dirty count).
        """
        with self._lock:
            snap: dict[str, Any] = {
                name: getattr(self, name) for name in MERGEABLE_COUNTERS
            }
            snap["by_protocol"] = {
                name: dict(per) for name, per in self.by_protocol.items()
            }
            return snap

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold one :meth:`snapshot` into this instance (addition only)."""
        with self._lock:
            for name in MERGEABLE_COUNTERS:
                setattr(self, name, getattr(self, name) + int(snapshot.get(name, 0)))
            for proto, per in (snapshot.get("by_protocol") or {}).items():
                mine = self.by_protocol.setdefault(
                    proto,
                    {"served": 0, "failed": 0, "bits_charged": 0, "wire_bytes": 0},
                )
                for key, value in per.items():
                    mine[key] = mine.get(key, 0) + int(value)

    # -- reporting ------------------------------------------------------------------

    def report(self) -> dict[str, Any]:
        """The JSON-safe aggregate report served to ``stats`` requests."""
        with self._lock:
            return {
                "sessions_started": self.sessions_started,
                "sessions_served": self.sessions_served,
                "sessions_failed": self.sessions_failed,
                "rejected_hellos": self.rejected_hellos,
                "stats_requests": self.stats_requests,
                "rounds_total": self.rounds_total,
                "messages_total": self.messages_total,
                "bits_charged_total": self.bits_charged_total,
                "wire_bytes_sent": self.wire_bytes_sent,
                "wire_bytes_received": self.wire_bytes_received,
                "wire_overhead_bytes": max(
                    0,
                    self.wire_bytes_sent
                    + self.wire_bytes_received
                    - (self.bits_charged_total + 7) // 8,
                ),
                "retries": self.retries,
                "shard_sessions": self.shard_sessions,
                "shard_resplits": self.shard_resplits,
                "sessions_drained": self.sessions_drained,
                "sessions_aborted": self.sessions_aborted,
                "admission": {
                    "shed_rate_limited": self.sessions_shed_rate,
                    "shed_at_capacity": self.sessions_shed_capacity,
                },
                "fleet": {
                    "connections_dispatched": self.connections_dispatched,
                    "worker_restarts": self.worker_restarts,
                },
                "mutations": {
                    "applied": self.mutations_applied,
                    "rejected": self.mutations_rejected,
                    "keys_inserted": self.keys_inserted,
                    "keys_deleted": self.keys_deleted,
                },
                "store": {
                    "hits": self.store_hits,
                    "misses": self.store_misses,
                    "invalidations": self.store_invalidations,
                    "journal_replays": self.journal_replays,
                    "journal_entries_replayed": self.journal_entries_replayed,
                    "snapshots_written": self.snapshots_written,
                    "snapshot_failures": self.snapshot_failures,
                    "anti_entropy_cycles": self.anti_entropy_cycles,
                    "dirty_datasets": self.store_dirty_datasets,
                    "journal_lag": self.store_journal_lag,
                },
                "by_protocol": {
                    name: dict(per) for name, per in sorted(self.by_protocol.items())
                },
            }

    def format_report(self, title: str = "service metrics") -> str:
        """Human-readable report (aggregate lines plus a per-protocol table)."""
        return format_stats_report(self.report(), title=title)


#: Every plain-int counter field, in declaration order -- the exact set
#: ``snapshot``/``merge`` carry (``by_protocol`` is handled structurally and
#: the lock is not state).  Derived from the dataclass fields so a counter
#: added later cannot silently fall out of fleet aggregation.
MERGEABLE_COUNTERS: tuple[str, ...] = tuple(
    f.name
    for f in dataclasses.fields(ServiceMetrics)
    if f.name not in ("by_protocol", "_lock")
)


def format_stats_report(report: dict[str, Any], title: str = "service metrics") -> str:
    """Render a :meth:`ServiceMetrics.report` dict for humans.

    Shared by :meth:`ServiceMetrics.format_report` (server side) and the
    ``python -m repro.service stats`` CLI (which only holds the JSON dict
    fetched over the wire): an aggregate summary, mutation/store lines when
    those subsystems saw traffic, and the per-protocol breakdown through
    the benchmark harness's :func:`~repro.bench.reporting.format_table`.
    """
    from repro.bench.reporting import format_table

    wire_bytes = report["wire_bytes_sent"] + report["wire_bytes_received"]
    lines = [
        f"{title}: {report['sessions_served']} served / "
        f"{report['sessions_failed']} failed "
        f"({report['sessions_started']} started, "
        f"{report['rejected_hellos']} rejected), "
        f"{report['rounds_total']} rounds, "
        f"{report['bits_charged_total']} bits charged, "
        f"{wire_bytes} wire bytes "
        f"({report['wire_overhead_bytes']} overhead), "
        f"{report['retries']} retries, "
        f"{report['shard_sessions']} shard sessions "
        f"({report['shard_resplits']} resplits), "
        f"{report['sessions_drained']} drained / "
        f"{report['sessions_aborted']} aborted on shutdown"
    ]
    mutations = report.get("mutations", {})
    if any(mutations.values()):
        lines.append(
            f"mutations: {mutations['applied']} applied / "
            f"{mutations['rejected']} rejected "
            f"(+{mutations['keys_inserted']} / -{mutations['keys_deleted']} keys)"
        )
    admission = report.get("admission", {})
    if any(admission.values()):
        lines.append(
            f"admission: {admission['shed_rate_limited']} shed rate-limited / "
            f"{admission['shed_at_capacity']} shed at-capacity"
        )
    fleet = report.get("fleet", {})
    if any(fleet.values()):
        lines.append(
            f"fleet: {fleet['connections_dispatched']} connections dispatched, "
            f"{fleet['worker_restarts']} worker restarts"
        )
    store = report.get("store", {})
    if any(store.values()):
        lines.append(
            f"store: {store['hits']} hits / {store['misses']} misses, "
            f"{store['invalidations']} invalidations, "
            f"{store['journal_replays']} journal replays "
            f"({store['journal_entries_replayed']} entries), "
            f"{store['snapshots_written']} snapshots "
            f"({store['snapshot_failures']} failed), "
            f"{store['anti_entropy_cycles']} anti-entropy cycles, "
            f"{store['dirty_datasets']} dirty "
            f"(journal lag {store['journal_lag']})"
        )
    rendered = "\n".join(lines) + "\n"
    per_rows = [
        {"protocol": name, **per} for name, per in report["by_protocol"].items()
    ]
    if per_rows:
        rendered += format_table(per_rows, title="per-protocol")
    workers = report.get("workers") or {}
    if workers:
        worker_rows = [
            {
                "worker": worker_id,
                "served": wreport.get("sessions_served", 0),
                "failed": wreport.get("sessions_failed", 0),
                "rejected": wreport.get("rejected_hellos", 0),
                "drained": wreport.get("sessions_drained", 0),
                "bits_charged": wreport.get("bits_charged_total", 0),
                "wire_bytes": (
                    wreport.get("wire_bytes_sent", 0)
                    + wreport.get("wire_bytes_received", 0)
                ),
            }
            for worker_id, wreport in sorted(
                workers.items(), key=lambda item: int(item[0])
            )
        ]
        rendered += format_table(worker_rows, title="per-worker")
    return rendered
