"""Pytest bootstrap: make the ``src`` layout importable without installation.

The library is normally installed with ``pip install -e .`` (or
``python setup.py develop`` in offline environments); this shim lets the test
and benchmark suites run straight from a source checkout as well.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
