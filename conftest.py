"""Pytest bootstrap: make the ``src`` layout importable without installation.

The library is normally installed with ``pip install -e .`` (or
``python setup.py develop`` in offline environments); this shim lets the test
and benchmark suites run straight from a source checkout as well.
"""

import signal
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


# ---------------------------------------------------------------------------
# Timeout guard for socket/asyncio tests
# ---------------------------------------------------------------------------
#
# CI installs pytest-timeout and runs with an explicit --timeout, so a hung
# socket test can never stall a job.  Offline checkouts may not have the
# plugin; this fallback honors @pytest.mark.timeout(N) with SIGALRM on
# platforms that have it, so the guard holds wherever the suite runs.

try:
    import pytest_timeout  # noqa: F401  (the real plugin takes precedence)

    _HAVE_TIMEOUT_PLUGIN = True
except ImportError:
    _HAVE_TIMEOUT_PLUGIN = False


def pytest_configure(config):
    if not _HAVE_TIMEOUT_PLUGIN:
        config.addinivalue_line(
            "markers",
            "timeout(seconds): fail the test if it runs longer than this "
            "(pytest-timeout when installed, SIGALRM fallback otherwise)",
        )


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    marker = item.get_closest_marker("timeout")
    use_alarm = (
        marker is not None
        and not _HAVE_TIMEOUT_PLUGIN
        and hasattr(signal, "SIGALRM")
        and marker.args
    )
    if not use_alarm:
        return (yield)
    seconds = int(marker.args[0])

    def _expired(signum, frame):
        raise TimeoutError(f"test exceeded its {seconds}s timeout marker")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(seconds)
    try:
        return (yield)
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
