"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments whose setuptools/pip lack PEP 660 support (``pip install -e .
--no-use-pep517 --no-build-isolation`` falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
