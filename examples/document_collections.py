#!/usr/bin/env python
"""Reconciling two document collections via shingles (Section 1 application).

Each document is summarised by the set of hashes of its 3-word shingles; a
collection is then a set of sets.  Reconciling the signature sets tells Bob
exactly which of Alice's documents he is missing or holds only stale versions
of, without shipping the documents themselves.

Run with::

    python examples/document_collections.py
"""

from repro.documents import DocumentCollection, classify_documents, reconcile_collections
from repro.workloads import edited_corpus_pair

SEED = 99
NUM_DOCS = 200
WORDS_PER_DOC = 80
NUM_EDITED = 4
EDITS_PER_DOC = 3
NUM_FRESH = 3
SIGNATURE_SIZE = 48


def main() -> None:
    alice_texts, bob_texts = edited_corpus_pair(
        NUM_DOCS, WORDS_PER_DOC, NUM_EDITED, EDITS_PER_DOC, NUM_FRESH, SEED
    )
    alice = DocumentCollection(
        alice_texts, shingle_size=3, seed=SEED, signature_size=SIGNATURE_SIZE
    )
    bob = DocumentCollection(
        bob_texts, shingle_size=3, seed=SEED, signature_size=SIGNATURE_SIZE
    )
    print(f"Alice holds {len(alice)} documents, Bob holds {len(bob)}.")

    classification = classify_documents(alice, bob)
    print(
        f"Of Alice's documents: {len(classification.exact_duplicates)} exact duplicates, "
        f"{len(classification.near_duplicates)} near duplicates, "
        f"{len(classification.fresh)} fresh.\n"
    )

    # Per-document signatures differ by at most twice the signature size (a
    # completely fresh document); only a handful of documents differ at all.
    per_child_bound = 2 * SIGNATURE_SIZE
    differing_children = 2 * (NUM_EDITED + NUM_FRESH) + 2
    result = reconcile_collections(
        alice, bob, per_child_bound, SEED, differing_children_bound=differing_children
    )
    recovered_ok = result.success and result.recovered == alice.to_sets_of_sets()
    print(
        f"Signature reconciliation: success={recovered_ok}, "
        f"{result.total_bits} bits, {result.num_rounds} round(s)."
    )
    raw_bits = sum(len(sig) for sig in alice.signatures) * alice.hash_bits
    print(f"Shipping every signature explicitly would cost {raw_bits} bits.")


if __name__ == "__main__":
    main()
