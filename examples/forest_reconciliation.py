#!/usr/bin/env python
"""Rooted-forest reconciliation (Section 6, Theorem 6.1).

Alice and Bob hold rooted forests that differ by a few directed edge
insertions/deletions.  Vertex signatures (hashed AHU labels) turn the forest
into a multiset of multisets, which the set-of-sets machinery reconciles;
Bob then rebuilds a forest isomorphic to Alice's.

Run with::

    python examples/forest_reconciliation.py
"""

from repro.graphs import forest_canonical_form, reconcile_forest
from repro.workloads import forest_instance

SEED = 11
NUM_VERTICES = 150
NUM_EDITS = 4
MAX_DEPTH = 5


def main() -> None:
    instance = forest_instance(NUM_VERTICES, NUM_EDITS, SEED, max_depth=MAX_DEPTH)
    alice, bob = instance.alice, instance.bob
    print(
        f"Alice's forest: {alice.num_vertices} vertices, {len(alice.roots())} trees, "
        f"depth {alice.max_depth}."
    )
    print(f"Bob's forest differs by {instance.num_edits} edge edits.\n")

    result = reconcile_forest(alice, bob, instance.num_edits, instance.max_depth, SEED)
    if not result.success:
        print(f"Protocol failed ({result.details.get('failure')}).")
        return
    isomorphic = forest_canonical_form(result.recovered) == forest_canonical_form(alice)
    print(
        f"Bob rebuilt a forest isomorphic to Alice's: {isomorphic} "
        f"({result.total_bits} bits, {result.num_rounds} round(s))."
    )
    raw = NUM_VERTICES * (NUM_VERTICES.bit_length())
    print(
        f"Shipping the parent array explicitly would cost about {raw} bits.\n"
        "Note: the protocol's cost depends only on d and the forest depth, not on n,\n"
        "so explicit transfer wins for small forests and loses for large ones\n"
        "(see benchmarks/bench_forest.py for the scaling curve)."
    )


if __name__ == "__main__":
    main()
