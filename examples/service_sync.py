#!/usr/bin/env python
"""One asyncio sync server, many concurrent clients, three protocols.

The sibling of ``socket_sync.py`` at service scale: a single
:class:`repro.service.SyncServer` hosts datasets for the ``ibf``, ``cpi``
and ``multiround`` protocols on one event loop, and twelve clients connect
*concurrently* -- four per protocol, each holding its own perturbed copy of
the server data.  Every client recovers the server's dataset, and each
result is checked against the same protocol run as an in-memory session
(identical recovered data and identical transcript bits: the wire changes
nothing but the transport).

The finale is a sharded sync: one client splits its set into 8 key-prefix
shards and reconciles them as 8 concurrent sessions against the same
server, and the server's ``stats`` report shows the sessions it served.

Run with::

    python examples/service_sync.py
"""

import asyncio
import random

import repro
from repro.core.setsofsets.types import SetOfSets
from repro.protocols.options import ReconcileOptions
from repro.service import SyncServer, afetch_stats, areconcile, areconcile_sharded

SEED = 2018
UNIVERSE = 1 << 20
SET_SIZE = 1500
NUM_CHILDREN = 120
CLIENTS_PER_PROTOCOL = 4


def make_datasets(rng: random.Random):
    """The server's data: one set for the set protocols, one set-of-sets."""
    server_set = set(rng.sample(range(UNIVERSE), SET_SIZE))
    children = [
        frozenset(rng.sample(range(UNIVERSE), 8)) for _ in range(NUM_CHILDREN)
    ]
    server_sos = SetOfSets(children)
    return {
        "ibf": server_set,
        "cpi": server_set,
        "multiround": server_sos,
    }


def perturb(dataset, rng: random.Random):
    """A client's copy: a few deletions and insertions (or touched children)."""
    if isinstance(dataset, SetOfSets):
        children = [set(child) for child in sorted(dataset.children, key=sorted)]
        for index in rng.sample(range(len(children)), 3):
            children[index].add(rng.randrange(UNIVERSE))
        return SetOfSets(children)
    mutated = set(dataset)
    for element in rng.sample(sorted(dataset), 4):
        mutated.discard(element)
    for _ in range(4):
        mutated.add(rng.randrange(UNIVERSE))
    return mutated


def client_options(client_id: int) -> ReconcileOptions:
    return ReconcileOptions(
        seed=SEED + client_id, universe_size=UNIVERSE, difference_bound=16
    )


async def run_client(port, protocol, client_id, datasets):
    """One concurrent client session plus its in-memory reference run."""
    mine = perturb(datasets[protocol], random.Random(SEED + client_id))
    options = client_options(client_id)
    result = await areconcile("127.0.0.1", port, protocol, mine, options=options)
    reference = repro.reconcile(
        datasets[protocol], mine, protocol=protocol, options=options
    )
    assert result.success, f"client {client_id} ({protocol}) failed"
    assert result.recovered == datasets[protocol], f"client {client_id} wrong data"
    assert result.recovered == reference.recovered, "network != in-memory recovery"
    assert result.total_bits == reference.total_bits, "transport changed accounting"
    return protocol, client_id, result.total_bits


async def main() -> None:
    datasets = make_datasets(random.Random(SEED))
    async with SyncServer(datasets) as server:
        port = server.port
        print(f"[server] listening on 127.0.0.1:{port}, "
              f"serving {sorted(datasets)}")

        tasks = [
            run_client(port, protocol, client_id, datasets)
            for client_id, protocol in enumerate(
                protocol
                for protocol in datasets
                for _ in range(CLIENTS_PER_PROTOCOL)
            )
        ]
        finished = await asyncio.gather(*tasks)
        print(f"[clients] {len(finished)} concurrent sessions reconciled, "
              "all byte-identical to in-memory runs:")
        for protocol, client_id, bits in finished:
            print(f"[clients]   #{client_id:<2} {protocol:<11} {bits:>7} bits")

        sharded = await areconcile_sharded(
            "127.0.0.1", port, "ibf",
            perturb(datasets["ibf"], random.Random(SEED + 99)),
            shard_bits=3,
            options=ReconcileOptions(
                seed=SEED, universe_size=UNIVERSE, difference_bound=16
            ),
        )
        assert sharded.success and sharded.recovered == datasets["ibf"]
        print(f"[sharded] 8-shard sync: {sharded.details['sessions']} sessions, "
              f"{sharded.total_bits} bits total, "
              f"{sharded.details['resplits']} resplit(s)")

        stats = await afetch_stats("127.0.0.1", port)
        print(f"[stats] served {stats['sessions_served']} sessions "
              f"({stats['shard_sessions']} sharded), "
              f"{stats['rounds_total']} rounds, "
              f"{stats['bits_charged_total']} bits charged, "
              f"{stats['wire_bytes_sent'] + stats['wire_bytes_received']} "
              "raw bytes on the wire")
        assert stats["sessions_served"] == len(finished) + sharded.details["sessions"]
        assert stats["sessions_failed"] == 0


if __name__ == "__main__":
    asyncio.run(main())
