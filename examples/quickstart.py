#!/usr/bin/env python
"""Quickstart: reconcile two sets of sets with every protocol in the library.

Alice and Bob each hold a parent set of child sets that differ in a handful of
elements.  We run the four SSRK protocols of the paper (Theorems 3.3, 3.5,
3.7 and 3.9) plus the unknown-``d`` multi-round variant, and print what each
one costs.

Run with::

    python examples/quickstart.py
"""

from repro import (
    SetOfSets,
    minimum_matching_difference,
    reconcile_cascading,
    reconcile_iblt_of_iblts,
    reconcile_multiround,
    reconcile_multiround_unknown,
    reconcile_naive,
)
from repro.workloads import sets_of_sets_instance

SEED = 2018
UNIVERSE = 1024          # element universe size u
NUM_CHILDREN = 48        # s
CHILD_SIZE = 32          # ~h
NUM_CHANGES = 10         # d


def main() -> None:
    instance = sets_of_sets_instance(
        NUM_CHILDREN, CHILD_SIZE, UNIVERSE, NUM_CHANGES, SEED, max_children_touched=5
    )
    alice, bob = instance.alice, instance.bob
    true_d = minimum_matching_difference(alice, bob)
    print(f"Alice: s={alice.num_children} children, n={alice.total_elements} elements")
    print(f"Bob:   s={bob.num_children} children, n={bob.total_elements} elements")
    print(f"True matching difference d = {true_d}\n")

    protocols = [
        (
            "naive (Thm 3.3)",
            lambda: reconcile_naive(
                alice, bob, instance.differing_children, UNIVERSE,
                instance.max_child_size, SEED,
            ),
        ),
        (
            "IBLT of IBLTs (Thm 3.5)",
            lambda: reconcile_iblt_of_iblts(
                alice, bob, instance.planted_difference, UNIVERSE, SEED,
                differing_children_bound=instance.differing_children,
            ),
        ),
        (
            "cascading (Thm 3.7)",
            lambda: reconcile_cascading(
                alice, bob, instance.planted_difference, UNIVERSE,
                instance.max_child_size, SEED,
            ),
        ),
        (
            "multi-round (Thm 3.9)",
            lambda: reconcile_multiround(
                alice, bob, instance.planted_difference, UNIVERSE,
                instance.max_child_size, SEED,
            ),
        ),
        (
            "multi-round, unknown d (Thm 3.10)",
            lambda: reconcile_multiround_unknown(
                alice, bob, UNIVERSE, instance.max_child_size, SEED,
            ),
        ),
    ]

    print(f"{'protocol':36s} {'ok':>3s} {'bits':>10s} {'rounds':>6s}")
    for name, run in protocols:
        result = run()
        recovered_ok = result.success and result.recovered == alice
        print(f"{name:36s} {str(recovered_ok):>3s} {result.total_bits:>10d} {result.num_rounds:>6d}")

    # For scale: sending Alice's whole parent set explicitly would cost about
    # n * log2(u) bits.
    explicit = alice.total_elements * (UNIVERSE - 1).bit_length()
    print(f"\nExplicit transfer of Alice's data would cost ~{explicit} bits.")

    # The same protocols are registered by name behind the uniform entry
    # point; the serializing transport round-trips every message through its
    # wire codec and verifies the measured bytes against the charged bits.
    import repro

    transport = repro.SerializingTransport()
    result = repro.reconcile(
        alice, bob, protocol="cascading", seed=SEED, transport=transport,
        universe_size=UNIVERSE, difference_bound=instance.planted_difference,
        max_child_size=instance.max_child_size,
    )
    assert result.success and result.recovered == alice
    measured = sum(m.measured_bytes for m in transport.measurements)
    print(f"Registered protocols: {', '.join(repro.protocols.names())}")
    print(f"repro.reconcile(protocol='cascading') verified on the wire: "
          f"{measured} bytes measured against {result.total_bits} bits charged.")


if __name__ == "__main__":
    main()
