#!/usr/bin/env python
"""Anti-entropy gossip: an 8-node replicated KV store converging live.

Eight :class:`repro.cluster.ClusterNode` replicas come up on one asyncio
event loop, each holding a shared 200-key keyspace plus six unsynced local
writes (and one node deletes a shared key, so a tombstone must propagate
too).  A deterministic :class:`repro.cluster.GossipScheduler` then drives
rounds of pairwise gossip: every round, each node runs one ``kv`` session
with a chosen peer -- IBLT reconciliation over the 64-bit record
fingerprints, then a value fetch of only the differing records.

The run prints per-round accounting and stops when every replica's state
digest is byte-identical.  The same scenario is then replayed on the
simulated :class:`repro.cluster.Cluster` driver to show both stacks charge
exactly the same session bits, and a full-state-exchange baseline shows
what the sketches saved.

Run with::

    python examples/cluster_gossip.py
"""

import asyncio

from repro.cluster import Cluster, ClusterNode, GossipScheduler, VersionedKV
from repro.protocols.options import ReconcileOptions
from repro.workloads.cluster import planted_cluster_writes

SEED = 2018
NUM_NODES = 8
SHARED_KEYS = 200
DELTA_WRITES = 6
DIFFERENCE_BOUND = 32
MAX_ROUNDS = 16


def plant(shared, per_node, put):
    """Load the workload through the given (name, key, value) put callable."""
    for name, writes in per_node.items():
        for key, value in writes:
            put(name, key, value)


async def live_run(shared, per_node):
    nodes = {
        f"node{index}": ClusterNode(
            f"node{index}",
            VersionedKV(index, seed=SEED),
            options=ReconcileOptions(seed=SEED, difference_bound=DIFFERENCE_BOUND),
        )
        for index in range(NUM_NODES)
    }
    for node in nodes.values():
        node.replica.merge_records(shared)
        await node.start()
    try:
        plant(shared, per_node, lambda name, k, v: nodes[name].replica.put(k, v))
        nodes["node0"].replica.delete("shared:0")  # a tombstone must travel too

        scheduler = GossipScheduler(SEED, "stale")
        names = sorted(nodes)
        total_bits = 0
        for round_index in range(1, MAX_ROUNDS + 1):
            round_bits = 0
            for name in names:
                peer = scheduler.select_peer(name, round_index, names)
                target = nodes[peer]
                summary = await nodes[name].agossip(target.host, target.port)
                assert summary["ok"], summary
                round_bits += summary["bits"]
                scheduler.record_sync(name, peer)
            total_bits += round_bits
            digests = {node.replica.digest() for node in nodes.values()}
            print(
                f"round {round_index}: {round_bits:>8,} bits, "
                f"{len(digests)} distinct digest(s)"
            )
            if len(digests) == 1:
                break
        digests = {node.replica.digest() for node in nodes.values()}
        assert len(digests) == 1, "live cluster failed to converge"
        sizes = {len(node.replica) for node in nodes.values()}
        assert sizes == {SHARED_KEYS + NUM_NODES * DELTA_WRITES}
        assert all(
            node.replica.get("shared:0") is None for node in nodes.values()
        ), "the tombstone did not propagate"
        print(
            f"live: {NUM_NODES} nodes byte-identical after {round_index} "
            f"round(s), {total_bits:,} bits total"
        )
        return total_bits
    finally:
        for node in nodes.values():
            await node.aclose()


def simulated_run(shared, per_node, exchange):
    cluster = Cluster(
        NUM_NODES,
        seed=SEED,
        difference_bound=DIFFERENCE_BOUND,
        policy="stale",
        exchange=exchange,
    )
    for name in cluster.node_names:
        cluster[name].merge_records(shared)
    plant(shared, per_node, cluster.put)
    cluster["node0"].delete("shared:0")
    report = cluster.run_until_converged(MAX_ROUNDS)
    assert report.converged
    print(
        f"simulated ({exchange}): converged in {report.rounds} round(s), "
        f"{report.total_bits:,} bits"
    )
    return report.total_bits


def main() -> None:
    shared, deltas = planted_cluster_writes(
        NUM_NODES, SHARED_KEYS, DELTA_WRITES, seed=SEED
    )
    per_node = {f"node{index}": writes for index, writes in enumerate(deltas)}

    live_bits = asyncio.run(live_run(shared, per_node))
    gossip_bits = simulated_run(shared, per_node, "gossip")
    assert live_bits == gossip_bits, (
        "live and simulated runs must charge identical session bits"
    )
    full_bits = simulated_run(shared, per_node, "full")
    print(
        f"gossip shipped {gossip_bits:,} bits vs {full_bits:,} full-state "
        f"({full_bits / gossip_bits:.1f}x less)"
    )


if __name__ == "__main__":
    main()
