#!/usr/bin/env python
"""Two OS processes reconcile their sets over a real localhost TCP socket.

Everything the other examples simulate in-process happens over an actual
wire here: the parent process plays Bob (listening), a child process plays
Alice (connecting), and the IBLT set-reconciliation parties exchange
codec-serialized bytes through :class:`repro.protocols.SocketTransport`.
Both endpoints reconstruct identical transcripts, and the measured byte
sizes are checked against the bits each message was charged.

Run with::

    python examples/socket_sync.py
"""

import multiprocessing
import socket

from repro.protocols import SocketTransport, run_party
from repro.protocols.parties.setrecon import SetReconContext, ibf_parties

SEED = 2018
UNIVERSE = 1 << 20
SHARED = set(range(1000, 1400))
ALICE_ONLY = {17, 99, 256_000}
BOB_ONLY = {123_456, 777}
#: ``None`` runs the two-round unknown-``d`` variant: Bob's difference
#: estimator crosses the wire first, so bytes flow in both directions.
DIFFERENCE_BOUND = None


def alice_process(port: int) -> None:
    """Child process: connect to Bob and run Alice's side of the protocol."""
    alice_set = SHARED | ALICE_ONLY
    ctx = SetReconContext(UNIVERSE, SEED)
    alice_party, _ = ibf_parties(alice_set, set(), DIFFERENCE_BOUND, ctx)
    with socket.create_connection(("127.0.0.1", port)) as sock:
        transport = SocketTransport(sock, "alice")
        outcome, transcript = run_party(alice_party, transport)
    print(f"[alice pid] sent {len(transcript)} message(s), "
          f"{transcript.total_bits} bits charged")


def main() -> None:
    bob_set = SHARED | BOB_ONLY
    alice_set = SHARED | ALICE_ONLY

    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]

    child = multiprocessing.Process(target=alice_process, args=(port,))
    child.start()

    conn, peer = listener.accept()
    listener.close()
    print(f"[bob] accepted connection from {peer}")
    ctx = SetReconContext(UNIVERSE, SEED)
    _, bob_party = ibf_parties(set(), bob_set, DIFFERENCE_BOUND, ctx)
    with conn:
        transport = SocketTransport(conn, "bob")
        outcome, transcript = run_party(bob_party, transport)
    child.join(timeout=30)

    print(f"[bob] success={outcome.success}, "
          f"recovered {len(outcome.recovered or ())} elements")
    assert outcome.success and outcome.recovered == alice_set
    print(f"[bob] transcript: {transcript.total_bits} bits over "
          f"{transcript.num_rounds} round(s)")
    for measurement in transport.measurements:
        print(f"[bob]   sent {measurement.label!r}: {measurement.measured_bytes} B "
              f"(budget {measurement.budget_bytes} B)")
    explicit_bits = len(alice_set) * (UNIVERSE - 1).bit_length()
    print(f"[bob] explicit transfer would cost ~{explicit_bits} bits; "
          f"the protocol used {transcript.total_bits}")


if __name__ == "__main__":
    main()
