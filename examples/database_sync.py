#!/usr/bin/env python
"""Synchronising two binary relational databases (Section 1 application).

Two replicas of a binary table (labeled columns, unlabeled rows) have drifted
by a few flipped bits.  The rows are sets of column indices, so the whole
table is a set of sets and the paper's protocols transfer just the
difference.

Run with::

    python examples/database_sync.py
"""

from repro.db import reconcile_tables
from repro.workloads import flipped_table_pair

SEED = 7
NUM_ROWS = 120
NUM_COLUMNS = 96
DENSITY = 0.45
NUM_FLIPS = 10


def main() -> None:
    alice, bob, flips = flipped_table_pair(
        NUM_ROWS, NUM_COLUMNS, DENSITY, NUM_FLIPS, SEED, max_rows_touched=5
    )
    print(f"Primary replica:  {alice.num_rows} rows x {alice.num_columns} columns")
    print(f"Stale replica:    {bob.num_rows} rows, {flips} bits flipped")
    print(f"Exact bit difference (min-cost row matching): {alice.bit_difference(bob)}\n")

    for protocol in ("naive", "cascading"):
        result = reconcile_tables(alice, bob, NUM_FLIPS + 2, SEED, protocol=protocol)
        status = "recovered" if result.success and result.recovered == alice else "FAILED"
        print(
            f"{protocol:10s}: {status}, {result.total_bits} bits "
            f"({result.total_bits / 8:.0f} bytes), {result.num_rounds} round(s)"
        )

    # Sending the raw table would cost rows * columns bits.
    print(f"\nShipping the full table would cost {NUM_ROWS * NUM_COLUMNS} bits.")


if __name__ == "__main__":
    main()
