#!/usr/bin/env python
"""Unlabeled random graph reconciliation (Section 5).

A base graph is drawn from G(n, p); Alice and Bob each hold a slightly
perturbed copy, and Alice's copy is privately relabeled, so the parties must
first agree on a vertex correspondence before they can exchange edge
differences.  The degree-ordering scheme (Theorem 5.2) does this by
reconciling vertex signatures as a set of sets.

Laptop-scale note: Theorem 5.3's separation guarantee is asymptotic, so this
example plants the separation property into the base graph (see
``planted_separated_graph``); DESIGN.md documents the substitution.

Run with::

    python examples/graph_reconciliation.py
"""

from repro.graphs import reconcile_degree_order
from repro.graphs.random_graphs import planted_separated_graph, reconciliation_pair

SEED = 5
NUM_VERTICES = 500
EDGE_PROBABILITY = 0.5
NUM_TOP = 48          # the scheme parameter h
NUM_CHANGES = 2       # d


def main() -> None:
    base = planted_separated_graph(
        NUM_VERTICES, EDGE_PROBABILITY, NUM_TOP, degree_gap=NUM_CHANGES + 1, seed=SEED
    )
    pair = reconciliation_pair(
        NUM_VERTICES, EDGE_PROBABILITY, NUM_CHANGES, seed=SEED + 1, base=base
    )
    print(
        f"Base graph: n={base.num_vertices}, |E|={base.num_edges}; "
        f"{NUM_CHANGES} edge changes split between the parties; "
        "Alice's copy privately relabeled."
    )

    result = reconcile_degree_order(pair.alice, pair.bob, NUM_CHANGES, NUM_TOP, seed=SEED + 2)
    if not result.success:
        print(f"Protocol failed ({result.details.get('failure')}); "
              "this happens when the instance is not separated -- rerun with another seed.")
        return
    recovered = result.recovered
    same_degrees = sorted(recovered.degree_sequence()) == sorted(pair.alice.degree_sequence())
    print(
        f"Recovered a graph with |E|={recovered.num_edges} "
        f"(degree sequence matches Alice's: {same_degrees})."
    )
    print(
        f"Communication: {result.total_bits} bits in {result.num_rounds} round(s) "
        f"(signatures {result.details['signature_bits']} bits, "
        f"edges {result.details['edge_bits']} bits)."
    )
    full = NUM_VERTICES * (NUM_VERTICES - 1) // 2
    print(f"Shipping the whole adjacency matrix would cost {full} bits.")


if __name__ == "__main__":
    main()
